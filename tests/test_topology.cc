/**
 * @file
 * Hierarchical-topology and collective-merge tests.
 *
 * The contract under test (DESIGN.md Section 7): a Topology only
 * changes the *model* — the functional result of an MSM is
 * bit-identical whichever merge strategy routes the partial sums
 * (gather, ring or tree), at every topology shape and hostThreads
 * setting, because the merged keys are disjoint and the schedules
 * are pure functions of (algo, topology, members). The
 * CollectiveTimeEstimator is pinned by KATs (legacy flat gather must
 * reproduce Cluster::gatherNs bit-exactly) and the Auto tuner must
 * agree with the measured-best strategy on contrasting topologies.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "src/ec/curves.h"
#include "src/gpusim/collectives.h"
#include "src/gpusim/topology.h"
#include "src/msm/checksum.h"
#include "src/msm/distmsm.h"
#include "src/msm/reference.h"
#include "src/msm/workload.h"
#include "src/support/prng.h"

namespace distmsm::msm {
namespace {

using gpusim::Cluster;
using gpusim::CollectiveAlgo;
using gpusim::CollectivePolicy;
using gpusim::CollectiveSchedule;
using gpusim::CollectiveTimeEstimator;
using gpusim::DeviceSpec;
using gpusim::IntraTopo;
using gpusim::Topology;
using support::StatusCode;

MsmOptions
topoTestOptions(unsigned s = 8)
{
    MsmOptions o;
    o.windowBitsOverride = s;
    o.scatter.blockDim = 64;
    o.scatter.gridDim = 4;
    o.scatter.sharedBytesPerBlock = 128 * 1024;
    o.hostThreads = 1;
    return o;
}

// --- Topology::parse -------------------------------------------------

TEST(TopologyParse, AcceptsFullGrammar)
{
    const auto topo_or = Topology::parse(
        "nodes=4,gpus=8,intra=ring,nvlink=300,nvlink_us=1.5,"
        "ib=50,ib_us=8,nics=4");
    ASSERT_TRUE(topo_or.isOk()) << topo_or.status().toString();
    const Topology &t = *topo_or;
    EXPECT_EQ(t.totalGpus, 32);
    EXPECT_EQ(t.gpusPerNode, 8);
    EXPECT_EQ(t.numNodes(), 4);
    EXPECT_EQ(t.intra, IntraTopo::Ring);
    EXPECT_DOUBLE_EQ(t.intraLink.bandwidthGBs, 300.0);
    EXPECT_DOUBLE_EQ(t.intraLink.latencyUs, 1.5);
    EXPECT_DOUBLE_EQ(t.interLink.bandwidthGBs, 50.0);
    EXPECT_DOUBLE_EQ(t.interLink.latencyUs, 8.0);
    EXPECT_EQ(t.nicsPerNode, 4);
    EXPECT_TRUE(t.hierarchical);
}

TEST(TopologyParse, EmptySpecIsOneDefaultNode)
{
    const auto topo_or = Topology::parse("");
    ASSERT_TRUE(topo_or.isOk());
    EXPECT_EQ(topo_or->numNodes(), 1);
    EXPECT_EQ(topo_or->totalGpus, 8);
    EXPECT_TRUE(topo_or->hierarchical);
}

TEST(TopologyParse, RejectsMalformedSpecs)
{
    const char *bad[] = {
        "bogus=3",          // unknown key
        "nodes",            // not key=value
        "nodes=0",          // below 1
        "nodes=x",          // non-numeric
        "nodes=1.5",        // non-integral
        "intra=mesh",       // unknown wiring
        "nvlink=-1",        // non-positive
        "nvlink=0",         // non-positive
        "ib_us=oops",       // non-numeric
    };
    for (const char *spec : bad) {
        const auto topo_or = Topology::parse(spec);
        EXPECT_FALSE(topo_or.isOk()) << "accepted: " << spec;
        if (!topo_or.isOk()) {
            EXPECT_EQ(topo_or.status().code(),
                      StatusCode::InvalidArgument)
                << spec;
        }
    }
}

TEST(TopologyParse, BadCollectiveNameRejected)
{
    const auto bad = gpusim::parseCollectivePolicy("mesh");
    ASSERT_FALSE(bad.isOk());
    EXPECT_EQ(bad.status().code(), StatusCode::InvalidArgument);
    EXPECT_EQ(*gpusim::parseCollectivePolicy("auto"),
              CollectivePolicy::Auto);
    EXPECT_EQ(*gpusim::parseCollectivePolicy("ring"),
              CollectivePolicy::Ring);
}

// --- Shape helpers ---------------------------------------------------

TEST(TopologyShape, FlatKeepsLegacyNodeNumbering)
{
    const Topology t = Topology::flat(12);
    EXPECT_FALSE(t.hierarchical);
    EXPECT_EQ(t.gpusPerNode, 8);
    EXPECT_EQ(t.numNodes(), 2);
    EXPECT_EQ(t.nodeOf(7), 0);
    EXPECT_EQ(t.nodeOf(8), 1);
    EXPECT_EQ(t.laneOf(11), 3);
    EXPECT_TRUE(t.sameNode(0, 7));
    EXPECT_FALSE(t.sameNode(7, 8));
    EXPECT_EQ(t.gpusOnNode(0), 8);
    EXPECT_EQ(t.gpusOnNode(1), 4); // ragged tail
}

TEST(TopologyShape, RingAndFcHopCounts)
{
    Topology t = Topology::dgx(1, 8);
    t.intra = IntraTopo::Ring;
    EXPECT_EQ(t.intraHops(0, 0), 0);
    EXPECT_EQ(t.intraHops(0, 1), 1);
    EXPECT_EQ(t.intraHops(0, 4), 4); // antipodal
    EXPECT_EQ(t.intraHops(0, 7), 1); // wraps
    EXPECT_EQ(t.intraHops(6, 1), 3);
    t.intra = IntraTopo::FullyConnected;
    EXPECT_EQ(t.intraHops(0, 4), 1);
    EXPECT_EQ(t.intraHops(0, 7), 1);
}

TEST(TopologyShape, LinkTimeKats)
{
    Topology t = Topology::dgx(2, 4);
    t.intra = IntraTopo::Ring;
    t.intraLink = {100.0, 2.0}; // 100 GB/s, 2 us
    t.interLink = {25.0, 10.0}; // 25 GB/s, 10 us
    t.nicsPerNode = 2;
    // Same node, 2 ring hops: 2 * 2us latency + 1e6 B / 100 GB/s.
    EXPECT_DOUBLE_EQ(t.linkNs(0, 2, 1000000), 2 * 2000.0 + 10000.0);
    // Cross node: one IB message striped over 2 NICs.
    EXPECT_DOUBLE_EQ(t.linkNs(1, 5, 1000000), 10000.0 + 20000.0);
    EXPECT_DOUBLE_EQ(t.linkNs(3, 3, 1 << 20), 0.0);
}

// --- Estimator KATs --------------------------------------------------

TEST(CollectiveEstimator, FlatGatherMatchesLegacyClusterFormula)
{
    // The legacy flat topology must reproduce Cluster::gatherNs
    // bit-exactly — this is what keeps every pre-existing timeline
    // byte-identical.
    const DeviceSpec dev = DeviceSpec::a100();
    for (int gpus : {1, 4, 8, 16, 64}) {
        const Cluster legacy(dev, gpus);
        const CollectiveTimeEstimator est(Topology::flat(gpus), dev);
        for (std::uint64_t bytes : {1024ull, 1ull << 20, 1ull << 26}) {
            EXPECT_EQ(est.gatherNs(gpus, bytes),
                      legacy.gatherNs(bytes))
                << gpus << " gpus, " << bytes << " B";
        }
    }
}

TEST(CollectiveEstimator, HierarchicalGatherChargesPerMessageLatency)
{
    // 32 nodes x 8: the host node's 8 devices each pay the host-link
    // latency, the 248 remote devices each pay an IB message — so
    // small-payload gathers are latency-bound and cost at least
    // remote_count * ib latency.
    const DeviceSpec dev = DeviceSpec::a100();
    const Topology topo = Topology::dgx(32, 8);
    const CollectiveTimeEstimator est(topo, dev);
    const double gather = est.gatherNs(256, 4096);
    EXPECT_GE(gather, 248 * topo.interLink.latencyUs * 1e3);
    // The tree pays only log2 rounds of latency and must be far
    // cheaper on the same small merge.
    EXPECT_LT(est.treeNs(256, 4096), gather / 4.0);
}

TEST(CollectiveEstimator, SingleGpuDegeneratesToHostHop)
{
    const DeviceSpec dev = DeviceSpec::a100();
    const CollectiveTimeEstimator est(Topology::dgx(1, 1), dev);
    const std::uint64_t bytes = 1 << 16;
    const double host_hop =
        dev.transferLatencyUs * 1e3 +
        static_cast<double>(bytes) /
            (dev.transferBandwidthGBs * 1e9) * 1e9;
    EXPECT_DOUBLE_EQ(est.ringNs(1, bytes), host_hop);
    EXPECT_DOUBLE_EQ(est.treeNs(1, bytes), host_hop);
}

TEST(CollectiveEstimator, RingKat)
{
    // 1 node x 4 over a 2us/300GBs NVLink: 2p-3 = 5 pipelined slots
    // plus the root's host hop.
    const DeviceSpec dev = DeviceSpec::a100();
    const Topology topo = Topology::dgx(1, 4);
    const CollectiveTimeEstimator est(topo, dev);
    const std::uint64_t bytes = 1 << 20;
    const double slot =
        topo.intraLink.latencyUs * 1e3 +
        static_cast<double>(bytes) /
            (topo.intraLink.bandwidthGBs * 1e9) * 1e9;
    const double host_hop =
        dev.transferLatencyUs * 1e3 +
        4.0 * static_cast<double>(bytes) /
            (dev.transferBandwidthGBs * 1e9) * 1e9;
    EXPECT_DOUBLE_EQ(est.ringNs(4, bytes), 5.0 * slot + host_hop);
}

TEST(CollectiveEstimator, DgxPresetMergeTimeKat)
{
    // Pins the calibrated link presets (kNvlink3NvSwitch /
    // kInfinibandHdrNic, topology.h) through the estimator on the
    // paper's testbed shape: 4 DGX nodes x 8 A100s. Regenerate these
    // constants only when deliberately re-calibrating the alpha/beta
    // link model — they are the contract that keeps every
    // hierarchical timeline stable.
    const DeviceSpec dev = DeviceSpec::a100();
    const Topology topo = Topology::dgx(4, 8);
    EXPECT_DOUBLE_EQ(topo.intraLink.bandwidthGBs, 300.0);
    EXPECT_DOUBLE_EQ(topo.intraLink.latencyUs, 2.0);
    EXPECT_DOUBLE_EQ(topo.interLink.bandwidthGBs, 25.0);
    EXPECT_DOUBLE_EQ(topo.interLink.latencyUs, 10.0);
    const CollectiveTimeEstimator est(topo, dev);

    const auto small = est.costs(topo.numGpus(), std::uint64_t{1}
                                                     << 10);
    EXPECT_DOUBLE_EQ(small.gatherNs, 240983.03999999998);
    EXPECT_DOUBLE_EQ(small.ringNs, 622553.17333333322);
    EXPECT_DOUBLE_EQ(small.treeNs, 37061.546666666669);
    EXPECT_DOUBLE_EQ(small.reduceScatterNs, 45240.746666666666);

    const auto large = est.costs(topo.numGpus(), std::uint64_t{1}
                                                     << 20);
    EXPECT_DOUBLE_EQ(large.gatherNs, 1246632.96);
    EXPECT_DOUBLE_EQ(large.ringNs, 3234449.4933333332);
    EXPECT_DOUBLE_EQ(large.treeNs, 1123023.7866666666);
    EXPECT_DOUBLE_EQ(large.reduceScatterNs, 1314524.5866666667);

    // The tree's log-depth latency advantage at small messages and
    // its bandwidth discipline at large ones are exactly what the
    // published NCCL ring-vs-tree crossover shows on multi-node
    // A100 fabrics: tree wins both here. Reduce-scatter's parallel
    // shard rounds only pay off once the node count grows (see
    // ReduceScatterBeatsTreeAt256Devices) — at 4 nodes its allgather
    // fan-in wave still costs more than the tree's two extra rounds.
    EXPECT_EQ(small.best(), CollectiveAlgo::Tree);
    EXPECT_EQ(large.best(), CollectiveAlgo::Tree);
}

TEST(CollectiveEstimator, PresetConstantsKat)
{
    // Locks the calibrated alpha/beta presets themselves (topology.h
    // documents the published sources): a recalibration must show up
    // here, in DgxPresetMergeTimeKat, and in the header comment
    // together.
    EXPECT_DOUBLE_EQ(gpusim::kNvlink3NvSwitch.bandwidthGBs, 300.0);
    EXPECT_DOUBLE_EQ(gpusim::kNvlink3NvSwitch.latencyUs, 2.0);
    EXPECT_DOUBLE_EQ(gpusim::kInfinibandHdrNic.bandwidthGBs, 25.0);
    EXPECT_DOUBLE_EQ(gpusim::kInfinibandHdrNic.latencyUs, 10.0);
    // The presets are what dgx()/parse() actually install.
    const Topology topo = Topology::dgx(2, 8);
    EXPECT_DOUBLE_EQ(topo.intraLink.bandwidthGBs,
                     gpusim::kNvlink3NvSwitch.bandwidthGBs);
    EXPECT_DOUBLE_EQ(topo.interLink.bandwidthGBs,
                     gpusim::kInfinibandHdrNic.bandwidthGBs);
}

TEST(CollectiveEstimator, CongestionMonotonicityKat)
{
    // The concurrent-transfer primitive: one synchronized wave of
    // transfers over a shared link pays the latency once and
    // serializes bandwidth proportionally to occupancy. More
    // concurrent transfers can never get cheaper; more lanes can
    // never get dearer; and a single transfer on a single lane is
    // exactly the plain link time.
    const gpusim::LinkSpec link{25.0, 10.0};
    const double bytes = 1 << 20;
    EXPECT_DOUBLE_EQ(
        gpusim::concurrentTransferNs(link, 1, 1, bytes),
        link.ns(1 << 20));
    double prev = 0.0;
    for (int transfers = 1; transfers <= 64; transfers *= 2) {
        const double t =
            gpusim::concurrentTransferNs(link, 4, transfers, bytes);
        EXPECT_GE(t, prev) << transfers << " transfers";
        prev = t;
    }
    prev = 1e18;
    for (int lanes = 1; lanes <= 16; lanes *= 2) {
        const double t =
            gpusim::concurrentTransferNs(link, lanes, 8, bytes);
        EXPECT_LE(t, prev) << lanes << " lanes";
        prev = t;
    }
    // reduceScatterNs inherits the monotonicity in payload size.
    const DeviceSpec dev = DeviceSpec::a100();
    const CollectiveTimeEstimator est(Topology::dgx(4, 8), dev);
    prev = 0.0;
    for (std::uint64_t b = 1024; b <= (1ull << 24); b *= 4) {
        const double t = est.reduceScatterNs(32, b);
        EXPECT_GT(t, prev) << b << " bytes";
        prev = t;
    }
}

TEST(CollectiveEstimator, ReduceScatterBeatsTreeAt256Devices)
{
    // The tentpole's win condition: at the paper-scale 32x8 cluster
    // the hierarchical reduce-scatter + allgather merge — whose
    // intra-node rounds run all nodes' NVLink rings concurrently and
    // whose inter-node exchange stripes every NIC — prices below the
    // serialized tree for small and large merges alike, and Auto
    // picks it.
    const DeviceSpec dev = DeviceSpec::a100();
    const Topology topo = Topology::dgx(32, 8);
    const CollectiveTimeEstimator est(topo, dev);
    for (std::uint64_t bytes : {4096ull, 81920ull, 1ull << 20}) {
        const auto c = est.costs(topo.numGpus(), bytes);
        EXPECT_LT(c.reduceScatterNs, c.treeNs) << bytes << " B";
        EXPECT_LT(c.reduceScatterNs, c.gatherNs) << bytes << " B";
        EXPECT_EQ(c.best(), CollectiveAlgo::ReduceScatter)
            << bytes << " B";
        EXPECT_EQ(est.pick(CollectivePolicy::Auto, topo.numGpus(),
                           bytes),
                  CollectiveAlgo::ReduceScatter)
            << bytes << " B";
    }
}

TEST(CollectiveEstimator, TuningIsDeterministic)
{
    const DeviceSpec dev = DeviceSpec::a100();
    const CollectiveTimeEstimator est(Topology::dgx(8, 8), dev);
    for (std::uint64_t bytes = 64; bytes <= (1ull << 28); bytes *= 8) {
        const CollectiveAlgo a =
            est.pick(CollectivePolicy::Auto, 64, bytes);
        const CollectiveAlgo b =
            est.pick(CollectivePolicy::Auto, 64, bytes);
        EXPECT_EQ(a, b);
        const auto costs = est.costs(64, bytes);
        EXPECT_LE(costs.ns(a),
                  std::min({costs.gatherNs, costs.ringNs,
                            costs.treeNs,
                            costs.reduceScatterNs}));
    }
    // Forced policies map straight through.
    EXPECT_EQ(est.pick(CollectivePolicy::Ring, 64, 4096),
              CollectiveAlgo::Ring);
    EXPECT_EQ(est.pick(CollectivePolicy::Tree, 64, 4096),
              CollectiveAlgo::Tree);
    EXPECT_EQ(est.pick(CollectivePolicy::Gather, 64, 4096),
              CollectiveAlgo::Gather);
    EXPECT_EQ(est.pick(CollectivePolicy::ReduceScatter, 64, 4096),
              CollectiveAlgo::ReduceScatter);
}

// --- Schedules -------------------------------------------------------

/**
 * Replay @p sched over per-member key sets; returns the root set.
 * Sharded steps (reduce-scatter rounds) move only the keys whose
 * k % shardCount matches, exactly like the engine; whole-payload
 * steps in an unsharded schedule must never fire from a drained
 * member (a reduce-scatter allgather step legitimately may — an
 * empty shard still ships for the deterministic transfer stream).
 */
std::set<int>
replaySchedule(const CollectiveSchedule &sched,
               const std::vector<int> &members)
{
    std::vector<std::set<int>> own(
        1 + *std::max_element(members.begin(), members.end()));
    for (int m : members)
        own[static_cast<std::size_t>(m)] = {m};
    for (const auto &step : sched.steps) {
        auto &src = own[static_cast<std::size_t>(step.src)];
        auto &dst = own[static_cast<std::size_t>(step.dst)];
        if (step.shard >= 0) {
            std::set<int> stay;
            for (int k : src) {
                if (k % sched.shardCount == step.shard) {
                    EXPECT_TRUE(dst.insert(k).second)
                        << "key " << k << " delivered twice";
                } else {
                    stay.insert(k);
                }
            }
            src = stay;
            continue;
        }
        if (sched.shardCount == 0) {
            EXPECT_FALSE(src.empty())
                << "step " << step.src << "->" << step.dst
                << " sends from a drained member";
        }
        for (int k : src) {
            EXPECT_TRUE(dst.insert(k).second)
                << "key " << k << " delivered twice";
        }
        src.clear();
    }
    return own[static_cast<std::size_t>(sched.root)];
}

TEST(CollectiveSchedule, RingChainsIntoLowestMember)
{
    const Topology topo = Topology::dgx(2, 4);
    const std::vector<int> members = {0, 1, 2, 5, 6};
    const auto sched = gpusim::buildCollectiveSchedule(
        CollectiveAlgo::Ring, topo, members);
    EXPECT_EQ(sched.root, 0);
    ASSERT_EQ(sched.steps.size(), 4u);
    EXPECT_EQ(sched.steps[0].src, 6);
    EXPECT_EQ(sched.steps[0].dst, 5);
    EXPECT_EQ(sched.steps[3].src, 1);
    EXPECT_EQ(sched.steps[3].dst, 0);
    EXPECT_EQ(replaySchedule(sched, members),
              std::set<int>(members.begin(), members.end()));
}

TEST(CollectiveSchedule, TreeReducesNodesThenLeaders)
{
    const Topology topo = Topology::dgx(2, 4);
    const std::vector<int> members = {0, 1, 2, 3, 4, 5, 6, 7};
    const auto sched = gpusim::buildCollectiveSchedule(
        CollectiveAlgo::Tree, topo, members);
    EXPECT_EQ(sched.root, 0);
    // 3 intra steps per node + 1 leader step.
    ASSERT_EQ(sched.steps.size(), 7u);
    // Every intra step stays on its node; exactly one crosses.
    int cross = 0;
    for (const auto &step : sched.steps)
        cross += topo.sameNode(step.src, step.dst) ? 0 : 1;
    EXPECT_EQ(cross, 1);
    EXPECT_EQ(sched.steps.back().src, 4); // leader of node 1
    EXPECT_EQ(sched.steps.back().dst, 0);
    EXPECT_EQ(replaySchedule(sched, members),
              std::set<int>(members.begin(), members.end()));
}

TEST(CollectiveSchedule, ReduceScatterShardsThenGathers)
{
    // p members: p-1 rounds of p concurrent shard rotations, then
    // p-1 allgather hops into the root. After the scatter rounds
    // member index s must hold exactly shard s — the replay checks
    // delivery; here we pin the schedule's shape.
    const Topology topo = Topology::dgx(2, 4);
    const std::vector<int> members = {0, 2, 3, 5, 6};
    const int p = static_cast<int>(members.size());
    const auto sched = gpusim::buildCollectiveSchedule(
        CollectiveAlgo::ReduceScatter, topo, members);
    EXPECT_EQ(sched.root, 0);
    EXPECT_EQ(sched.shardCount, p);
    ASSERT_EQ(sched.steps.size(),
              static_cast<std::size_t>(p * (p - 1) + (p - 1)));
    // Scatter rounds ring-forward with a shard tag; allgather hops
    // carry the whole payload (shard -1) into the root.
    for (int i = 0; i < p * (p - 1); ++i) {
        EXPECT_GE(sched.steps[static_cast<std::size_t>(i)].shard, 0);
        EXPECT_LT(sched.steps[static_cast<std::size_t>(i)].shard, p);
    }
    for (int i = p * (p - 1); i < p * (p - 1) + (p - 1); ++i) {
        EXPECT_EQ(sched.steps[static_cast<std::size_t>(i)].shard, -1);
        EXPECT_EQ(sched.steps[static_cast<std::size_t>(i)].dst, 0);
    }
    EXPECT_EQ(replaySchedule(sched, members),
              std::set<int>(members.begin(), members.end()));
}

TEST(CollectiveSchedule, EveryShapeDeliversEachKeyOnce)
{
    // Ragged membership (mid-merge device loss shapes) on ragged
    // topologies: the replay asserts no key is dropped or doubled.
    Topology ragged = Topology::dgx(3, 3);
    ragged.totalGpus = 7; // last node holds one device
    const std::vector<std::vector<int>> member_sets = {
        {0}, {2, 6}, {0, 1, 2, 3, 4, 5, 6}, {1, 3, 4, 6}, {5, 6},
    };
    for (const auto &members : member_sets) {
        for (CollectiveAlgo algo :
             {CollectiveAlgo::Ring, CollectiveAlgo::Tree,
              CollectiveAlgo::ReduceScatter}) {
            const auto sched = gpusim::buildCollectiveSchedule(
                algo, ragged, members);
            EXPECT_EQ(sched.root, members.front());
            EXPECT_EQ(replaySchedule(sched, members),
                      std::set<int>(members.begin(), members.end()))
                << gpusim::collectiveAlgoName(algo) << " over "
                << members.size() << " members";
        }
    }
}

// --- Functional differential -----------------------------------------

struct TopoCase
{
    const char *name;
    Topology topo;
};

std::vector<TopoCase>
differentialTopologies()
{
    Topology ring24 = Topology::dgx(2, 4);
    ring24.intra = IntraTopo::Ring;
    Topology ragged = Topology::dgx(3, 3);
    ragged.totalGpus = 7;
    return {
        {"flat8", Topology::flat(8)},
        {"dgx2x4", Topology::dgx(2, 4)},
        {"dgx2x4ring", ring24},
        {"dgx4x2", Topology::dgx(4, 2)},
        {"ragged7", ragged},
    };
}

template <typename Curve>
void
runDifferential(std::uint64_t seed)
{
    Prng prng(seed);
    const std::size_t n = std::size_t{1} << 12;
    const auto points = generatePoints<Curve>(n, prng);
    const auto scalars = generateScalars<Curve>(n, prng);
    const auto expect = msmSerialPippenger<Curve>(points, scalars, 8);

    for (const TopoCase &tc : differentialTopologies()) {
        const Cluster cluster(DeviceSpec::a100(), tc.topo);
        auto base_options = topoTestOptions();
        const auto base_or = tryComputeDistMsm<Curve>(
            points, scalars, cluster, base_options);
        ASSERT_TRUE(base_or.isOk())
            << tc.name << ": " << base_or.status().toString();
        EXPECT_EQ(base_or->plan.collective, CollectiveAlgo::Gather);
        EXPECT_TRUE(base_or->value == expect) << tc.name;

        for (CollectivePolicy policy :
             {CollectivePolicy::Ring, CollectivePolicy::Tree,
              CollectivePolicy::ReduceScatter}) {
            for (int host_threads : {1, 3}) {
                auto options = topoTestOptions();
                options.collective = policy;
                options.hostThreads = host_threads;
                const auto got_or = tryComputeDistMsm<Curve>(
                    points, scalars, cluster, options);
                ASSERT_TRUE(got_or.isOk())
                    << tc.name << "/"
                    << gpusim::collectivePolicyName(policy) << ": "
                    << got_or.status().toString();
                EXPECT_TRUE(
                    bitEqual(got_or->value, base_or->value))
                    << tc.name << "/"
                    << gpusim::collectivePolicyName(policy)
                    << " threads=" << host_threads;
                EXPECT_EQ(got_or->stats, base_or->stats)
                    << tc.name << "/"
                    << gpusim::collectivePolicyName(policy);
                EXPECT_EQ(got_or->hostOps, base_or->hostOps)
                    << tc.name << "/"
                    << gpusim::collectivePolicyName(policy);
            }
        }
    }
}

TEST(CollectiveDifferential, Bn254AllTopologiesAllAlgos)
{
    runDifferential<Bn254>(0x70B0);
}

TEST(CollectiveDifferential, Bls377AllTopologiesAllAlgos)
{
    runDifferential<Bls377>(0x70B1);
}

TEST(CollectiveDifferential, SignedGlvRingMatchesGather)
{
    // Feature-stacked windows (signed digits + GLV) over a ring
    // fabric: routing must stay transparent to the digit encoding.
    Prng prng(0x70B2);
    const std::size_t n = std::size_t{1} << 12;
    const auto points = generatePoints<Bn254>(n, prng);
    const auto scalars = generateScalars<Bn254>(n, prng);
    Topology topo = Topology::dgx(2, 4);
    topo.intra = IntraTopo::Ring;
    const Cluster cluster(DeviceSpec::a100(), topo);
    auto options = topoTestOptions();
    options.signedDigits = true;
    options.glv = true;
    const auto base_or = tryComputeDistMsm<Bn254>(points, scalars,
                                                  cluster, options);
    ASSERT_TRUE(base_or.isOk());
    options.collective = CollectivePolicy::Ring;
    const auto ring_or = tryComputeDistMsm<Bn254>(points, scalars,
                                                  cluster, options);
    ASSERT_TRUE(ring_or.isOk());
    EXPECT_TRUE(bitEqual(ring_or->value, base_or->value));
    EXPECT_EQ(ring_or->stats, base_or->stats);
    EXPECT_TRUE(base_or->value ==
                msmSerialPippenger<Bn254>(points, scalars, 8));
}

TEST(CollectiveDifferential, PrecomputeCombinedPathMatchesGather)
{
    // The fixed-base combined path merges bucket slices instead of
    // window points; the collective must route those slices to the
    // same bit pattern too.
    Prng prng(0x70B3);
    const std::size_t n = std::size_t{1} << 10;
    const auto points = generatePoints<Bn254>(n, prng);
    const auto scalars = generateScalars<Bn254>(n, prng);
    const Cluster cluster(DeviceSpec::a100(), Topology::dgx(2, 4));
    auto options = topoTestOptions();
    options.precompute = true;
    const auto base_or = tryComputeDistMsm<Bn254>(points, scalars,
                                                  cluster, options);
    ASSERT_TRUE(base_or.isOk());
    ASSERT_TRUE(base_or->plan.precompute)
        << "planner declined the table; the combined path is not "
           "exercised";
    for (CollectivePolicy policy :
         {CollectivePolicy::Ring, CollectivePolicy::Tree,
          CollectivePolicy::ReduceScatter}) {
        auto opt = options;
        opt.collective = policy;
        const auto got_or = tryComputeDistMsm<Bn254>(points, scalars,
                                                     cluster, opt);
        ASSERT_TRUE(got_or.isOk())
            << gpusim::collectivePolicyName(policy);
        EXPECT_TRUE(bitEqual(got_or->value, base_or->value))
            << gpusim::collectivePolicyName(policy);
        EXPECT_EQ(got_or->stats, base_or->stats);
    }
}

// --- The tuner vs the measured best ----------------------------------

TEST(CollectiveTuner, PickMatchesMeasuredBestOnContrastingTopologies)
{
    // Two topologies with opposite winners: the legacy flat node
    // (one latency term — gather is unbeatable) and a 32x8
    // hierarchical cluster (256 per-message latencies — the tree's
    // log2 rounds win). Auto must pick whichever forced strategy
    // measures fastest end-to-end on each.
    const auto curve = gpusim::CurveProfile::bn254();
    struct Case
    {
        const char *name;
        Topology topo;
    };
    const Case cases[] = {
        {"flat8", Topology::flat(8)},
        {"dgx32x8", Topology::dgx(32, 8)},
    };
    for (const Case &c : cases) {
        const Cluster cluster(DeviceSpec::a100(), c.topo);
        MsmOptions options;
        const std::uint64_t n = 1ull << 20;

        double best_ns = 0.0;
        CollectiveAlgo best = CollectiveAlgo::Gather;
        bool first = true;
        for (CollectivePolicy policy :
             {CollectivePolicy::Gather, CollectivePolicy::Ring,
              CollectivePolicy::Tree,
              CollectivePolicy::ReduceScatter}) {
            auto forced = options;
            forced.collective = policy;
            const MsmTimeline t =
                estimateDistMsm(curve, n, cluster, forced);
            if (first || t.totalNs() < best_ns) {
                best_ns = t.totalNs();
                best = planMsm(curve, n, cluster, forced).collective;
                first = false;
            }
        }

        auto tuned = options;
        tuned.collective = CollectivePolicy::Auto;
        const MsmPlan plan = planMsm(curve, n, cluster, tuned);
        EXPECT_EQ(plan.collective, best) << c.name;
        const MsmTimeline t = estimateDistMsm(curve, n, cluster,
                                              tuned);
        EXPECT_EQ(t.collective, plan.collective) << c.name;
        EXPECT_DOUBLE_EQ(t.totalNs(), best_ns) << c.name;
        // The per-strategy predictions ride along in the timeline.
        EXPECT_LE(t.mergeCosts.ns(t.collective),
                  std::min({t.mergeCosts.gatherNs,
                            t.mergeCosts.ringNs,
                            t.mergeCosts.treeNs,
                            t.mergeCosts.reduceScatterNs}))
            << c.name;
    }
}

TEST(CollectiveTuner, TreeBeatsGatherAt256Devices)
{
    // The scaling headline: at 256 simulated devices the tuner's
    // merge must be measurably below the all-to-host gather.
    const auto curve = gpusim::CurveProfile::bn254();
    const Cluster cluster(DeviceSpec::a100(), Topology::dgx(32, 8));
    MsmOptions gather;
    gather.collective = CollectivePolicy::Gather;
    MsmOptions tuned;
    tuned.collective = CollectivePolicy::Auto;
    const MsmTimeline tg =
        estimateDistMsm(curve, 1ull << 24, cluster, gather);
    const MsmTimeline tt =
        estimateDistMsm(curve, 1ull << 24, cluster, tuned);
    EXPECT_NE(tt.collective, CollectiveAlgo::Gather);
    EXPECT_LT(tt.transferNs, tg.transferNs * 0.5)
        << "tuned merge is not measurably below gather";
    EXPECT_LE(tt.totalNs(), tg.totalNs());
}

// --- Topology-aware resharding ---------------------------------------

TEST(TopologyReshard, PrefersSameNodeSurvivors)
{
    Prng prng(0x70B4);
    const std::size_t n = std::size_t{1} << 12;
    const auto points = generatePoints<Bn254>(n, prng);
    const auto scalars = generateScalars<Bn254>(n, prng);
    const Cluster cluster(DeviceSpec::a100(), Topology::dgx(2, 2));

    auto options = topoTestOptions(); // s=8: 32 windows over 4 gpus
    options.collective = CollectivePolicy::Ring;
    const auto clean_or =
        tryComputeDistMsm<Bn254>(points, scalars, cluster, options);
    ASSERT_TRUE(clean_or.isOk());

    // Kill device 3 (node 1): its 8 windows round-robin the
    // preference list [2 (same node), 0, 1] — ordinals 0,3,6 land
    // intra-node, the other five cross.
    auto faulty = options;
    faulty.faults.events.push_back(
        {gpusim::FaultKind::KillDevice, 3, 0, 0, 0.0});
    const auto got_or =
        tryComputeDistMsm<Bn254>(points, scalars, cluster, faulty);
    ASSERT_TRUE(got_or.isOk()) << got_or.status().toString();
    EXPECT_TRUE(bitEqual(got_or->value, clean_or->value));
    EXPECT_EQ(got_or->stats, clean_or->stats);
    EXPECT_EQ(got_or->fault.windowsResharded, 8u);
    EXPECT_EQ(got_or->fault.reshardsIntraNode, 3u);
    EXPECT_EQ(got_or->fault.reshardsCrossNode, 5u);
}

TEST(TopologyReshard, SingleNodeReshardsStayIntraNode)
{
    Prng prng(0x70B5);
    const std::size_t n = std::size_t{1} << 12;
    const auto points = generatePoints<Bn254>(n, prng);
    const auto scalars = generateScalars<Bn254>(n, prng);
    const Cluster cluster(DeviceSpec::a100(), 4); // legacy flat

    auto options = topoTestOptions();
    options.faults.events.push_back(
        {gpusim::FaultKind::KillDevice, 1, 0, 0, 0.0});
    const auto got_or =
        tryComputeDistMsm<Bn254>(points, scalars, cluster, options);
    ASSERT_TRUE(got_or.isOk());
    EXPECT_EQ(got_or->fault.reshardsCrossNode, 0u);
    EXPECT_EQ(got_or->fault.reshardsIntraNode,
              got_or->fault.windowsResharded);
}

} // namespace
} // namespace distmsm::msm
