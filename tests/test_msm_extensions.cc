/**
 * @file
 * Tests for the MSM extensions the paper's Section 6 credits to the
 * ZPrize lineage and adopts: signed-digit windows, precomputation of
 * per-window point multiples, and the bucket-reduce implementation
 * family (serial / chunked-parallel / weighted).
 */

#include <gtest/gtest.h>

#include "src/ec/curves.h"
#include "src/msm/bucket_reduce.h"
#include "src/msm/distmsm.h"
#include "src/msm/reference.h"
#include "src/msm/signed_digits.h"
#include "src/msm/workload.h"
#include "src/support/prng.h"

namespace distmsm::msm {
namespace {

using gpusim::Cluster;
using gpusim::DeviceSpec;

MsmOptions
testOptions(unsigned s)
{
    MsmOptions o;
    o.windowBitsOverride = s;
    o.scatter.blockDim = 64;
    o.scatter.gridDim = 4;
    o.scatter.sharedBytesPerBlock = 128 * 1024;
    return o;
}

TEST(SignedDigits, DigitsStayInRange)
{
    Prng prng(0x51);
    for (unsigned s : {2u, 5u, 11u, 16u}) {
        for (int iter = 0; iter < 20; ++iter) {
            BigInt<4> k = BigInt<4>::random(prng);
            k.truncateToBits(254);
            const auto digits = signedWindowDigits(k, 254, s);
            EXPECT_EQ(digits.size(), (254 + s - 1) / s + 1);
            const std::int64_t half = std::int64_t{1} << (s - 1);
            for (auto d : digits) {
                EXPECT_GE(d, -half);
                EXPECT_LE(d, half);
            }
        }
    }
}

TEST(SignedDigits, ReassemblesToScalar)
{
    Prng prng(0x52);
    for (unsigned s : {3u, 8u, 13u}) {
        for (int iter = 0; iter < 30; ++iter) {
            BigInt<4> k = BigInt<4>::random(prng);
            k.truncateToBits(254);
            const auto digits = signedWindowDigits(k, 254, s);
            EXPECT_TRUE(signedDigitsReassemble(digits, k, s))
                << "s=" << s;
        }
    }
}

TEST(SignedDigits, EdgeScalars)
{
    const unsigned s = 4;
    // Zero.
    auto digits = signedWindowDigits(BigInt<4>::zero(), 254, s);
    for (auto d : digits)
        EXPECT_EQ(d, 0);
    // All-ones (maximum carry propagation).
    BigInt<4> max{};
    for (auto &l : max.limb)
        l = ~0ull;
    max.truncateToBits(254);
    digits = signedWindowDigits(max, 254, s);
    EXPECT_TRUE(signedDigitsReassemble(digits, max, s));
    // Exactly half a window (the tie case m == 2^(s-1) keeps m).
    const auto half = BigInt<4>::fromU64(8); // 2^(4-1)
    digits = signedWindowDigits(half, 254, s);
    EXPECT_EQ(digits[0], 8);
    EXPECT_TRUE(signedDigitsReassemble(digits, half, s));
}

TEST(SignedDigits, PlusHalfBoundaryKat)
{
    // Audit KAT for the signed-digit boundary: signedWindowDigits
    // keeps m == +2^(s-1) as the digit +half (asymmetric range
    // [-half, +half]), so every bucket array must have half+1 slots.
    // This scalar hits +half in every full window the 254-bit width
    // can express: nibble pattern 0x88... gives chunk 8 = 2^(4-1)
    // with no carry anywhere.
    const unsigned s = 4;
    BigInt<4> k{};
    for (auto &l : k.limb)
        l = 0x8888888888888888ull;
    k.truncateToBits(254); // clears bits 254/255 -> top window is 0
    const auto digits = signedWindowDigits(k, 254, s);
    const std::int32_t half = 1 << (s - 1);
    // Windows 0..62 are full nibbles, all +half; the truncated top
    // window and the carry window are 0.
    ASSERT_EQ(digits.size(), 65u);
    for (std::size_t w = 0; w < 63; ++w)
        EXPECT_EQ(digits[w], half) << "window " << w;
    EXPECT_EQ(digits[63], 0);
    EXPECT_EQ(digits[64], 0);
    EXPECT_TRUE(signedDigitsReassemble(digits, k, s));

    // The engine must route bucket +half correctly end to end, with
    // every accumulation path that indexes the halved bucket array.
    Prng prng(0x55);
    const auto points = generatePoints<Bn254>(48, prng);
    std::vector<BigInt<4>> scalars(48, k); // every point hits +half
    const auto naive = msmNaive<Bn254>(points, scalars);
    for (const bool batch_affine : {false, true}) {
        for (const bool precompute : {false, true}) {
            const Cluster cluster(DeviceSpec::a100(), 4);
            MsmOptions options = testOptions(s);
            options.signedDigits = true;
            options.batchAffine = batch_affine;
            options.precompute = precompute;
            const auto result = computeDistMsm<Bn254>(
                points, scalars, cluster, options);
            EXPECT_EQ(result.value, naive)
                << "batchAffine=" << batch_affine
                << " precompute=" << precompute;
        }
    }

    // GLV half-width path: the decomposed halves run through the
    // same signed windows; the crafted scalar must still survive.
    MsmOptions glv_options = testOptions(s);
    glv_options.signedDigits = true;
    glv_options.glv = true;
    const Cluster cluster(DeviceSpec::a100(), 4);
    EXPECT_EQ(computeDistMsm<Bn254>(points, scalars, cluster,
                                    glv_options)
                  .value,
              naive);
}

TEST(SignedDigits, SerialPippengerMatchesNaive)
{
    Prng prng(0x53);
    const auto points = generatePoints<Bn254>(40, prng);
    const auto scalars = generateScalars<Bn254>(40, prng);
    const auto naive = msmNaive<Bn254>(points, scalars);
    for (unsigned s : {3u, 8u, 12u}) {
        EXPECT_EQ(msmSerialPippengerSigned<Bn254>(points, scalars, s),
                  naive)
            << "s=" << s;
    }
}

TEST(SignedDigits, DistMsmMatchesNaive)
{
    Prng prng(0x54);
    const auto points = generatePoints<Bls381>(120, prng);
    const auto scalars = generateScalars<Bls381>(120, prng);
    const auto naive = msmNaive<Bls381>(points, scalars);
    for (int gpus : {1, 8}) {
        const Cluster cluster(DeviceSpec::a100(), gpus);
        MsmOptions options = testOptions(7);
        options.signedDigits = true;
        const auto result = computeDistMsm<Bls381>(points, scalars,
                                                   cluster, options);
        EXPECT_EQ(result.value, naive) << gpus << " GPUs";
        // Signed windows: one extra window, half the buckets.
        EXPECT_EQ(result.plan.numWindows,
                  windowCount(Bls381::kScalarBits, 7) + 1);
        EXPECT_EQ(result.plan.numBuckets, 1ull << 6);
    }
}

TEST(KernelStatsAggregation, PhasesDoNotScaleWithDeviceCount)
{
    // The engine merges the per-device bucket groups of one window
    // with KernelStats::mergeLockstep: running the identical MSM on
    // a bucket-split multi-GPU cluster must not multiply the phase
    // count (launch structure) relative to a single device, while
    // the result stays bit-identical.
    Prng prng(0x56);
    const auto points = generatePoints<Bn254>(64, prng);
    const auto scalars = generateScalars<Bn254>(64, prng);
    MsmOptions options;
    options.windowBitsOverride = 16; // 16 windows
    options.hierarchicalScatter = false;

    const Cluster one_gpu(DeviceSpec::a100(), 1);
    const auto single =
        computeDistMsm<Bn254>(points, scalars, one_gpu, options);

    const Cluster split(DeviceSpec::a100(), 32);
    const auto multi =
        computeDistMsm<Bn254>(points, scalars, split, options);
    ASSERT_TRUE(multi.plan.bucketsSplitAcrossGpus);
    ASSERT_GT(multi.plan.gpusPerWindow, 1);

    EXPECT_EQ(multi.value, single.value);
    EXPECT_EQ(multi.stats.phases, single.stats.phases)
        << "lockstep devices must share, not stack, launch phases";
}

TEST(SignedDigits, HalvesBucketCountInPlan)
{
    const auto curve = gpusim::CurveProfile::bn254();
    const Cluster cluster(DeviceSpec::a100(), 8);
    MsmOptions options;
    options.windowBitsOverride = 12;
    const auto plain = planMsm(curve, 1 << 20, cluster, options);
    options.signedDigits = true;
    const auto signed_plan = planMsm(curve, 1 << 20, cluster, options);
    EXPECT_EQ(plain.numBuckets, (1ull << 12) - 1);
    EXPECT_EQ(signed_plan.numBuckets, 1ull << 11);
    EXPECT_EQ(signed_plan.numWindows, plain.numWindows + 1);
}

TEST(SignedDigits, ReducesSimulatedReduceTime)
{
    // Half the buckets => cheaper bucket-reduce and transfers.
    const auto curve = gpusim::CurveProfile::bls381();
    const Cluster cluster(DeviceSpec::a100(), 8);
    MsmOptions plain;
    plain.cpuBucketReduce = false; // same executor for both sides
    MsmOptions with_signed = plain;
    with_signed.signedDigits = true;
    const auto t_plain =
        estimateDistMsm(curve, 1ull << 26, cluster, plain);
    const auto t_signed =
        estimateDistMsm(curve, 1ull << 26, cluster, with_signed);
    EXPECT_LT(t_signed.bucketReduceNs, t_plain.bucketReduceNs);
}

TEST(Precompute, TableHoldsWindowMultiples)
{
    Prng prng(0x55);
    const auto points = generatePoints<Bn254>(6, prng);
    const unsigned s = 5, windows = 4;
    const auto table = detail::precomputeWindowMultiples<Bn254>(
        points, windows, s);
    ASSERT_EQ(table.size(), windows);
    using Xyzz = XYZZPoint<Bn254>;
    for (unsigned j = 0; j < windows; ++j) {
        for (std::size_t i = 0; i < points.size(); ++i) {
            BigInt<4> factor{};
            factor.setBit(j * s);
            EXPECT_EQ(Xyzz::fromAffine(table[j][i]),
                      pmul(Xyzz::fromAffine(points[i]), factor))
                << "j=" << j << " i=" << i;
        }
    }
}

TEST(Precompute, DistMsmMatchesNaive)
{
    Prng prng(0x56);
    const auto points = generatePoints<Bn254>(80, prng);
    const auto scalars = generateScalars<Bn254>(80, prng);
    const auto naive = msmNaive<Bn254>(points, scalars);
    const Cluster cluster(DeviceSpec::a100(), 8);
    MsmOptions options = testOptions(9);
    options.precompute = true;
    const auto result =
        computeDistMsm<Bn254>(points, scalars, cluster, options);
    EXPECT_EQ(result.value, naive);
    // With merged windows the host never runs Horner doublings:
    // every host op is a reduce/merge PADD.
    EXPECT_GT(result.hostOps, 0u);
}

TEST(Precompute, ComposesWithSignedDigits)
{
    Prng prng(0x57);
    const auto points = generatePoints<Bn254>(64, prng);
    const auto scalars = generateScalars<Bn254>(64, prng);
    const auto naive = msmNaive<Bn254>(points, scalars);
    const Cluster cluster(DeviceSpec::a100(), 4);
    MsmOptions options = testOptions(6);
    options.precompute = true;
    options.signedDigits = true;
    const auto result =
        computeDistMsm<Bn254>(points, scalars, cluster, options);
    EXPECT_EQ(result.value, naive);
}

class BucketReduceTest : public ::testing::Test
{
  protected:
    using Xyzz = XYZZPoint<Bn254>;

    std::vector<Xyzz>
    randomBuckets(std::size_t m, std::uint64_t seed)
    {
        Prng prng(seed);
        std::vector<Xyzz> buckets(m, Xyzz::identity());
        const Xyzz g = Xyzz::fromAffine(Bn254::generator());
        for (std::size_t b = 1; b < m; ++b) {
            if (prng.below(4) == 0)
                continue; // keep some buckets empty
            buckets[b] =
                pmul(g, BigInt<1>::fromU64(1 + prng.below(1000)));
        }
        return buckets;
    }
};

TEST_F(BucketReduceTest, ChunkedMatchesSerial)
{
    const auto buckets = randomBuckets(65, 0x60);
    const auto serial = bucketReduceSerial<Bn254>(buckets);
    for (std::size_t chunks : {1u, 2u, 7u, 16u, 64u, 100u}) {
        EXPECT_EQ(bucketReduceChunked<Bn254>(buckets, chunks),
                  serial)
            << chunks << " chunks";
    }
}

TEST_F(BucketReduceTest, WeightedMatchesSerial)
{
    const auto buckets = randomBuckets(33, 0x61);
    EXPECT_EQ(bucketReduceWeighted<Bn254>(buckets),
              bucketReduceSerial<Bn254>(buckets));
}

TEST_F(BucketReduceTest, SmallMultipleIsScalarMul)
{
    const Xyzz g = Xyzz::fromAffine(Bn254::generator());
    for (std::uint64_t k : {0ull, 1ull, 2ull, 7ull, 100ull, 4097ull}) {
        EXPECT_EQ(smallMultiple(g, k),
                  pmul(g, BigInt<1>::fromU64(k)))
            << "k=" << k;
    }
}

TEST_F(BucketReduceTest, WeightedCostsMoreThanSerial)
{
    // The work inflation that motivates the CPU offload (Sec. 3.2.3).
    const auto buckets = randomBuckets(129, 0x62);
    ReduceStats serial_stats, weighted_stats;
    bucketReduceSerial<Bn254>(buckets, &serial_stats);
    bucketReduceWeighted<Bn254>(buckets, &weighted_stats);
    EXPECT_GT(weighted_stats.padds + weighted_stats.pdbls,
              2 * (serial_stats.padds + serial_stats.pdbls));
}

TEST_F(BucketReduceTest, EmptyAndTinyInputs)
{
    const std::vector<Xyzz> empty(1, Xyzz::identity());
    EXPECT_TRUE(bucketReduceSerial<Bn254>(empty).isIdentity());
    EXPECT_TRUE(bucketReduceChunked<Bn254>(empty, 4).isIdentity());
    const auto two = randomBuckets(2, 0x63);
    EXPECT_EQ(bucketReduceChunked<Bn254>(two, 8),
              bucketReduceSerial<Bn254>(two));
}

} // namespace
} // namespace distmsm::msm
