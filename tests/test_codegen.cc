/**
 * @file
 * Tests for register allocation and kernel emission: slot counts
 * equal the scheduler's register-pressure numbers, spill plans map
 * to exactly the planned transfers, and the register-level programs
 * reproduce PADD/PACC/PDBL bitwise on real field arithmetic.
 */

#include <gtest/gtest.h>

#include "src/ec/curves.h"
#include "src/sched/codegen.h"
#include "src/sched/schedule_search.h"
#include "src/support/prng.h"

namespace distmsm::sched {
namespace {

int
countOf(const AllocatedKernel &kernel, KernelInstr::Op op)
{
    int n = 0;
    for (const auto &i : kernel.instrs)
        n += i.op == op;
    return n;
}

TEST(Codegen, PaccOptimalUsesSevenRegisters)
{
    const OpDag dag = makePaccDag();
    const auto opt = findOptimalOrder(dag);
    const SpillPlan plan = planSpills(dag, opt.order, opt.peak);
    ASSERT_TRUE(plan.feasible);
    const auto kernel = allocateRegisters(dag, opt.order, plan);
    EXPECT_EQ(kernel.numRegisters, 7);
    EXPECT_EQ(kernel.numSharedSlots, 0);
    EXPECT_EQ(countOf(kernel, KernelInstr::Op::Mul), 10);
    EXPECT_EQ(countOf(kernel, KernelInstr::Op::Store), 0);
    EXPECT_EQ(countOf(kernel, KernelInstr::Op::Out), 4);
}

TEST(Codegen, PaccSpilledUsesFiveRegisters)
{
    const OpDag dag = makePaccDag();
    const auto opt = findOptimalOrder(dag);
    const SpillPlan plan = planSpills(dag, opt.order, 5);
    ASSERT_TRUE(plan.feasible);
    const auto kernel = allocateRegisters(dag, opt.order, plan);
    EXPECT_LE(kernel.numRegisters, 5);
    EXPECT_LE(kernel.numSharedSlots, plan.peakShared);
    EXPECT_EQ(countOf(kernel, KernelInstr::Op::Store) +
                  countOf(kernel, KernelInstr::Op::Fill),
              plan.transfers);
}

TEST(Codegen, PaddOptimalUsesNineRegisters)
{
    const OpDag dag = makePaddDag();
    const auto opt = findOptimalOrder(dag);
    const SpillPlan plan = planSpills(dag, opt.order, opt.peak);
    ASSERT_TRUE(plan.feasible);
    const auto kernel = allocateRegisters(dag, opt.order, plan);
    EXPECT_EQ(kernel.numRegisters, 9);
    EXPECT_EQ(countOf(kernel, KernelInstr::Op::Mul), 14);
}

TEST(Codegen, ListingRendersAllInstructions)
{
    const OpDag dag = makePaccDag();
    const auto opt = findOptimalOrder(dag);
    const SpillPlan plan = planSpills(dag, opt.order, 5);
    const auto kernel = allocateRegisters(dag, opt.order, plan);
    const std::string text = renderKernel(dag, kernel);
    EXPECT_NE(text.find("mont.mul"), std::string::npos);
    EXPECT_NE(text.find("st.shared"), std::string::npos);
    EXPECT_NE(text.find("; spill"), std::string::npos);
    EXPECT_NE(text.find("st.global  [Xout]"), std::string::npos);
    // One line per instruction plus the header.
    const auto lines =
        std::count(text.begin(), text.end(), '\n');
    EXPECT_EQ(lines,
              static_cast<long>(kernel.instrs.size()) + 1);
}

template <typename Curve>
class CodegenSemanticsTest : public ::testing::Test
{
  protected:
    using Fq = typename Curve::Fq;
    using Xyzz = XYZZPoint<Curve>;

    Prng prng_{0xC0DE6E4};

    Xyzz
    randPoint()
    {
        const auto k = BigInt<1>::fromU64(2 + prng_.below(1 << 18));
        return pmul(Xyzz::fromAffine(Curve::generator()), k);
    }
};

using CodegenCurves = ::testing::Types<Bn254, Mnt4753>;
TYPED_TEST_SUITE(CodegenSemanticsTest, CodegenCurves);

TYPED_TEST(CodegenSemanticsTest, AllocatedPaccMatchesReference)
{
    using Fq = typename TypeParam::Fq;
    const OpDag dag = makePaccDag();
    const auto opt = findOptimalOrder(dag);
    for (int target : {opt.peak, 5, 4}) {
        const SpillPlan plan = planSpills(dag, opt.order, target);
        ASSERT_TRUE(plan.feasible) << target;
        const auto kernel =
            allocateRegisters(dag, opt.order, plan);
        for (int iter = 0; iter < 2; ++iter) {
            const auto acc = this->randPoint();
            const auto p = this->randPoint().toAffine();
            const std::vector<Fq> inputs = {acc.x,  acc.y, acc.zz,
                                            acc.zzz, p.x, p.y};
            const auto outs =
                executeAllocated<Fq>(dag, kernel, inputs);
            const auto want = pacc(acc, p);
            ASSERT_EQ(outs.size(), 4u);
            EXPECT_EQ(outs[0], want.x) << "target " << target;
            EXPECT_EQ(outs[1], want.y);
            EXPECT_EQ(outs[2], want.zz);
            EXPECT_EQ(outs[3], want.zzz);
        }
    }
}

TYPED_TEST(CodegenSemanticsTest, AllocatedPaddMatchesReference)
{
    using Fq = typename TypeParam::Fq;
    const OpDag dag = makePaddDag();
    const auto opt = findOptimalOrder(dag);
    const SpillPlan plan = planSpills(dag, opt.order, 7);
    ASSERT_TRUE(plan.feasible);
    const auto kernel = allocateRegisters(dag, opt.order, plan);
    const auto p1 = this->randPoint();
    const auto p2 = this->randPoint();
    const std::vector<Fq> inputs = {p1.x, p1.y, p1.zz, p1.zzz,
                                    p2.x, p2.y, p2.zz, p2.zzz};
    const auto outs = executeAllocated<Fq>(dag, kernel, inputs);
    const auto want = padd(p1, p2);
    ASSERT_EQ(outs.size(), 4u);
    EXPECT_EQ(outs[0], want.x);
    EXPECT_EQ(outs[1], want.y);
    EXPECT_EQ(outs[2], want.zz);
    EXPECT_EQ(outs[3], want.zzz);
}

TYPED_TEST(CodegenSemanticsTest, AllocatedPdblMatchesReference)
{
    using Fq = typename TypeParam::Fq;
    const OpDag dag = makePdblDag(TypeParam::kAIsZero);
    const auto opt = findOptimalOrder(dag);
    const SpillPlan plan = planSpills(dag, opt.order, opt.peak);
    ASSERT_TRUE(plan.feasible);
    const auto kernel = allocateRegisters(dag, opt.order, plan);
    const auto p = this->randPoint();
    std::vector<Fq> inputs = {p.x, p.y, p.zz, p.zzz};
    if (!TypeParam::kAIsZero)
        inputs.push_back(TypeParam::a());
    const auto outs = executeAllocated<Fq>(dag, kernel, inputs);
    const auto want = pdbl(p);
    ASSERT_EQ(outs.size(), 4u);
    EXPECT_EQ(outs[0], want.x);
    EXPECT_EQ(outs[1], want.y);
    EXPECT_EQ(outs[2], want.zz);
    EXPECT_EQ(outs[3], want.zzz);
}

TEST(Codegen, ReferenceOrderAllocatesAtItsPeak)
{
    const OpDag dag = makePaccDag();
    std::vector<int> order(dag.numOps());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = static_cast<int>(i);
    const SpillPlan plan = planSpills(dag, order, 9);
    ASSERT_TRUE(plan.feasible);
    const auto kernel = allocateRegisters(dag, order, plan);
    EXPECT_EQ(kernel.numRegisters, 9);
}

} // namespace
} // namespace distmsm::sched
