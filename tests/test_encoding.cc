/**
 * @file
 * Tests for compressed point encoding, proof serialization and the
 * dedicated squaring path.
 */

#include <gtest/gtest.h>

#include "src/bigint/squaring.h"
#include "src/ec/curves.h"
#include "src/ec/encoding.h"
#include "src/field/field_params.h"
#include "src/support/prng.h"
#include "src/zksnark/proof_io.h"
#include "src/zksnark/workloads.h"

namespace distmsm {
namespace {

template <typename C>
class EncodingTest : public ::testing::Test
{
  protected:
    using Xyzz = XYZZPoint<C>;

    Prng prng_{0xE4C0};

    AffinePoint<C>
    randPoint()
    {
        const auto k = BigInt<1>::fromU64(2 + prng_.below(1 << 20));
        return pmul(Xyzz::fromAffine(C::generator()), k).toAffine();
    }
};

using AllCurves = ::testing::Types<Bn254, Bls377, Bls381, Mnt4753>;
TYPED_TEST_SUITE(EncodingTest, AllCurves);

TYPED_TEST(EncodingTest, RoundTrip)
{
    for (int i = 0; i < 8; ++i) {
        const auto p = this->randPoint();
        const auto bytes = encodePoint<TypeParam>(p);
        ASSERT_EQ(bytes.size(), encodedPointSize<TypeParam>());
        const auto decoded = decodePoint<TypeParam>(bytes);
        ASSERT_TRUE(decoded.has_value());
        EXPECT_EQ(*decoded, p);
    }
}

TYPED_TEST(EncodingTest, IdentityRoundTrip)
{
    const auto id = AffinePoint<TypeParam>::identity();
    const auto bytes = encodePoint<TypeParam>(id);
    EXPECT_EQ(bytes[0], 0);
    const auto decoded = decodePoint<TypeParam>(bytes);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_TRUE(decoded->infinity);
}

TYPED_TEST(EncodingTest, NegatedPointDiffersOnlyInFlag)
{
    const auto p = this->randPoint();
    const auto a = encodePoint<TypeParam>(p);
    const auto b = encodePoint<TypeParam>(p.negated());
    EXPECT_NE(a[0], b[0]);
    for (std::size_t i = 1; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]);
}

TYPED_TEST(EncodingTest, RejectsMalformed)
{
    auto bytes = encodePoint<TypeParam>(this->randPoint());
    // Bad flag.
    auto bad = bytes;
    bad[0] = 7;
    EXPECT_FALSE(decodePoint<TypeParam>(bad).has_value());
    // Wrong length.
    bad = bytes;
    bad.pop_back();
    EXPECT_FALSE(decodePoint<TypeParam>(bad).has_value());
    // Identity with trailing garbage.
    bad.assign(encodedPointSize<TypeParam>(), 0);
    bad.back() = 1;
    EXPECT_FALSE(decodePoint<TypeParam>(bad).has_value());
    // x >= p (all 0xff bytes).
    bad.assign(encodedPointSize<TypeParam>(), 0xFF);
    bad[0] = 2;
    EXPECT_FALSE(decodePoint<TypeParam>(bad).has_value());
}

TYPED_TEST(EncodingTest, RejectsNonCurveX)
{
    // Find a small x whose RHS is a non-residue and require reject.
    using Fq = typename TypeParam::Fq;
    for (std::uint64_t x = 1; x < 200; ++x) {
        const Fq fx = Fq::fromU64(x);
        const Fq rhs =
            fx.sqr() * fx + TypeParam::a() * fx + TypeParam::b();
        if (rhs.legendre() == -1) {
            auto p = AffinePoint<TypeParam>::fromXY(fx, Fq::zero());
            p.infinity = false;
            auto bytes = encodePoint<TypeParam>(p);
            bytes[0] = 2;
            EXPECT_FALSE(
                decodePoint<TypeParam>(bytes).has_value());
            return;
        }
    }
    GTEST_SKIP() << "no small non-curve x found";
}

TEST(ProofIo, RoundTripAndSize)
{
    namespace zk = zksnark;
    Prng prng(0x10);
    auto built = zk::buildMulChainCircuit<Bn254Fr>(16, 2, prng);
    const auto trapdoor = zk::Trapdoor<Bn254Fr>::random(prng);
    const auto keys = zk::setup<Bn254>(built.r1cs, trapdoor);
    const auto proof =
        zk::prove<Bn254>(keys.pk, built.r1cs, built.wires, prng);

    const auto bytes = zk::serializeProof<Bn254>(proof);
    EXPECT_EQ(bytes.size(), zk::proofSize<Bn254>());
    // The wire portion a pairing verifier would need is three
    // compressed G1 points: 3 * 33 = 99 bytes on BN254 (the paper's
    // 127-byte proofs carry one G2 element instead).
    EXPECT_EQ(zk::proofPointBytes<Bn254>(), 99u);

    const auto round = zk::deserializeProof<Bn254>(bytes);
    ASSERT_TRUE(round.has_value());
    EXPECT_TRUE(round->a == proof.a);
    EXPECT_TRUE(round->b == proof.b);
    EXPECT_TRUE(round->c == proof.c);
    EXPECT_EQ(round->aScalar, proof.aScalar);

    // The deserialized proof still verifies.
    const std::vector<Bn254Fr> inputs(
        built.wires.begin() + 1,
        built.wires.begin() + 1 + built.r1cs.numPublic());
    EXPECT_TRUE(zk::verify<Bn254>(keys.vk, *round, inputs));

    // Corrupt a byte: either decode fails or verification fails.
    auto bad = bytes;
    bad[5] ^= 0x40;
    const auto tampered = zk::deserializeProof<Bn254>(bad);
    if (tampered.has_value()) {
        EXPECT_FALSE(zk::verify<Bn254>(keys.vk, *tampered, inputs));
    }
}

template <typename P>
class SquaringTest : public ::testing::Test
{
};

using AllFieldParams =
    ::testing::Types<Bn254FqParams, Bn254FrParams, Bls377FqParams,
                     Bls377FrParams, Bls381FqParams, Bls381FrParams,
                     Mnt4753FqParams, Mnt4753FrParams>;
TYPED_TEST_SUITE(SquaringTest, AllFieldParams);

TYPED_TEST(SquaringTest, SqrFullMatchesMulFull)
{
    Prng prng(0x5012);
    using B = BigInt<TypeParam::kLimbs>;
    for (int i = 0; i < 40; ++i) {
        const B a = B::random(prng);
        EXPECT_EQ(sqrFull(a), mulFull(a, a));
    }
    // Edges.
    EXPECT_EQ(sqrFull(B::zero()), mulFull(B::zero(), B::zero()));
    B max{};
    for (auto &l : max.limb)
        l = ~0ull;
    EXPECT_EQ(sqrFull(max), mulFull(max, max));
}

TYPED_TEST(SquaringTest, MontSqrMatchesMontMul)
{
    Prng prng(0x5013);
    using B = BigInt<TypeParam::kLimbs>;
    const B mod = B::fromLimbs(TypeParam::kModulus);
    for (int i = 0; i < 25; ++i) {
        const B a = B::randomBelow(prng, mod);
        EXPECT_EQ(montSqrDedicated(a, mod, TypeParam::kInv64),
                  montMulCIOS(a, a, mod, TypeParam::kInv64));
    }
}

} // namespace
} // namespace distmsm
