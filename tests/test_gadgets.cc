/**
 * @file
 * Tests for the R1CS gadget library: every gadget produces a
 * satisfiable system, rejects out-of-spec assignments, and composes
 * into provable circuits through the full Groth16 pipeline.
 */

#include <gtest/gtest.h>

#include "src/ec/curves.h"
#include "src/zksnark/gadgets.h"
#include "src/zksnark/groth16.h"

namespace distmsm::zksnark {
namespace {

using F = Bn254Fr;
using Builder = GadgetBuilder<F>;

bool
satisfied(const Builder &b)
{
    auto [r1cs, wires] = b.build();
    return r1cs.isSatisfied(wires);
}

TEST(Gadgets, MulAndSquare)
{
    Builder b(0);
    const auto x = b.allocate(F::fromU64(6));
    const auto y = b.allocate(F::fromU64(7));
    const auto p = b.mul(x, y);
    EXPECT_EQ(b.value(p), F::fromU64(42));
    const auto s = b.square(p);
    EXPECT_EQ(b.value(s), F::fromU64(1764));
    EXPECT_TRUE(satisfied(b));
}

TEST(Gadgets, BooleanEnforcement)
{
    Builder good(0);
    good.allocateBit(true);
    good.allocateBit(false);
    EXPECT_TRUE(satisfied(good));

    // A non-boolean value under the boolean constraint must fail.
    Builder bad(0);
    const auto w = bad.allocate(F::fromU64(2));
    bad.enforceBoolean(w);
    EXPECT_FALSE(satisfied(bad));
}

TEST(Gadgets, LogicGatesTruthTables)
{
    for (int a = 0; a <= 1; ++a) {
        for (int bv = 0; bv <= 1; ++bv) {
            Builder b(0);
            const auto wa = b.allocateBit(a);
            const auto wb = b.allocateBit(bv);
            EXPECT_EQ(b.value(b.andGate(wa, wb)),
                      F::fromU64(a & bv));
            EXPECT_EQ(b.value(b.xorGate(wa, wb)),
                      F::fromU64(a ^ bv));
            EXPECT_EQ(b.value(b.notGate(wa)), F::fromU64(1 - a));
            EXPECT_TRUE(satisfied(b)) << a << bv;
        }
    }
}

TEST(Gadgets, Select)
{
    Builder b(0);
    const auto yes = b.allocateBit(true);
    const auto no = b.allocateBit(false);
    const auto x = b.allocate(F::fromU64(11));
    const auto y = b.allocate(F::fromU64(22));
    EXPECT_EQ(b.value(b.select(yes, x, y)), F::fromU64(11));
    EXPECT_EQ(b.value(b.select(no, x, y)), F::fromU64(22));
    EXPECT_TRUE(satisfied(b));
}

TEST(Gadgets, BitDecomposition)
{
    Builder b(0);
    const auto w = b.allocate(F::fromU64(0b1011010));
    const auto bits = b.decompose(w, 8);
    ASSERT_EQ(bits.size(), 8u);
    const bool expected[] = {0, 1, 0, 1, 1, 0, 1, 0};
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(b.value(bits[i]), F::fromU64(expected[i])) << i;
    EXPECT_TRUE(satisfied(b));
}

TEST(Gadgets, SboxRoundIsFifthPower)
{
    Builder b(0);
    const auto x = b.allocate(F::fromU64(3));
    const auto k = b.allocate(F::fromU64(4));
    const F c = F::fromU64(1);
    const auto out = b.sboxRound(x, k, c);
    // (3 + 4 + 1)^5 = 8^5 = 32768.
    EXPECT_EQ(b.value(out), F::fromU64(32768));
    EXPECT_TRUE(satisfied(b));
    // 3 constraints per round.
    EXPECT_EQ(b.numConstraints(), 3u);
}

TEST(Gadgets, SboxChainProvesEndToEnd)
{
    Prng prng(0x9AD);
    auto builder = buildSboxChain<F>(20, F::fromU64(5),
                                     F::random(prng), prng);
    auto [r1cs, wires] = builder.build();
    ASSERT_TRUE(r1cs.isSatisfied(wires));
    EXPECT_EQ(r1cs.numConstraints(), 60u);

    const auto trapdoor = Trapdoor<F>::random(prng);
    const auto keys = setup<Bn254>(r1cs, trapdoor);
    const auto proof = prove<Bn254>(keys.pk, r1cs, wires, prng);
    const std::vector<F> inputs(wires.begin() + 1,
                                wires.begin() + 2);
    EXPECT_TRUE(verify<Bn254>(keys.vk, proof, inputs));
    // A different seed must not verify against this proof.
    EXPECT_FALSE(
        verify<Bn254>(keys.vk, proof, {inputs[0] + F::one()}));
}

TEST(Gadgets, TamperedWitnessDetected)
{
    Prng prng(0x9AE);
    auto builder = buildSboxChain<F>(5, F::fromU64(9),
                                     F::random(prng), prng);
    auto [r1cs, wires] = builder.build();
    ASSERT_TRUE(r1cs.isSatisfied(wires));
    wires[wires.size() / 2] += F::one();
    EXPECT_FALSE(r1cs.isSatisfied(wires));
}

} // namespace
} // namespace distmsm::zksnark
