/**
 * @file
 * Tests for the Fp2 extension field and the BN254 G2 group: field
 * laws, the complex square root, the twist-order/cofactor identity,
 * group laws over Fp2 coordinates and G2 multi-scalar
 * multiplication through the generic MSM stack.
 */

#include <gtest/gtest.h>

#include "src/ec/bn254_g2.h"
#include "src/msm/distmsm.h"
#include "src/msm/reference.h"
#include "src/msm/workload.h"
#include "src/support/prng.h"

namespace distmsm {
namespace {

using F2 = Bn254Fq2;

TEST(Fp2, FieldLaws)
{
    Prng prng(0xF2);
    for (int i = 0; i < 15; ++i) {
        const F2 a = F2::random(prng), b = F2::random(prng),
                 c = F2::random(prng);
        EXPECT_EQ(a + b, b + a);
        EXPECT_EQ(a * b, b * a);
        EXPECT_EQ((a + b) * c, a * c + b * c);
        EXPECT_EQ((a * b) * c, a * (b * c));
        EXPECT_EQ(a - a, F2::zero());
        EXPECT_EQ(a * F2::one(), a);
        EXPECT_EQ(a.sqr(), a * a);
    }
}

TEST(Fp2, USquaredIsBeta)
{
    const F2 u{Bn254Fq::zero(), Bn254Fq::one()};
    EXPECT_EQ(u.sqr(), F2(F2::beta(), Bn254Fq::zero()));
    // BN254: u^2 = -1.
    EXPECT_EQ(F2::beta(), -Bn254Fq::one());
}

TEST(Fp2, InverseAndNorm)
{
    Prng prng(0xF3);
    for (int i = 0; i < 10; ++i) {
        F2 a = F2::random(prng);
        if (a.isZero())
            a = F2::one();
        EXPECT_EQ(a * a.inverse(), F2::one());
        // norm(ab) == norm(a) norm(b).
        const F2 b = F2::random(prng);
        EXPECT_EQ((a * b).norm(), a.norm() * b.norm());
        // a * conj(a) == norm(a) (as a purely real element).
        EXPECT_EQ(a * a.conjugate(),
                  F2(a.norm(), Bn254Fq::zero()));
    }
}

TEST(Fp2, SqrtOfSquares)
{
    Prng prng(0xF4);
    for (int i = 0; i < 10; ++i) {
        const F2 a = F2::random(prng);
        const F2 square = a.sqr();
        ASSERT_TRUE(square.isSquare());
        const F2 root = square.sqrt();
        EXPECT_EQ(root.sqr(), square);
    }
    // Purely real squares.
    const F2 four = F2::fromU64(4);
    EXPECT_EQ(four.sqrt().sqr(), four);
    EXPECT_TRUE(F2::zero().sqrt().isZero());
}

TEST(Fp2, NonSquaresDetected)
{
    // In Fp2 with beta = -1, an element is a square iff its norm is
    // a QR in Fp; count both outcomes over random draws.
    Prng prng(0xF5);
    int squares = 0, non_squares = 0;
    for (int i = 0; i < 40; ++i) {
        const F2 a = F2::random(prng);
        if (a.isSquare()) {
            ++squares;
        } else {
            ++non_squares;
        }
    }
    EXPECT_GT(squares, 5);
    EXPECT_GT(non_squares, 5);
}

TEST(Fp2, PowMatchesRepeatedMul)
{
    Prng prng(0xF6);
    const F2 a = F2::random(prng);
    F2 expect = F2::one();
    for (std::uint64_t e = 0; e < 9; ++e) {
        EXPECT_EQ(a.pow(BigInt<1>::fromU64(e)), expect);
        expect *= a;
    }
}

TEST(G2, GeneratorIsOnTwist)
{
    const auto g = Bn254G2::generator();
    EXPECT_FALSE(g.infinity);
    EXPECT_TRUE(g.isOnCurve());
}

TEST(G2, GeneratorHasOrderR)
{
    // The heart of the construction: the cofactor-cleared point is
    // r-torsion, which simultaneously validates the twist choice
    // (b' = 3/(9+u)) and the BN identity #E'(Fp2) = r (2p - r).
    const auto g =
        XYZZPoint<Bn254G2>::fromAffine(Bn254G2::generator());
    EXPECT_TRUE(pmul(g, Bn254Fr::modulus()).isIdentity());
    // ... and not of some smaller trivial order.
    EXPECT_FALSE(pmul(g, BigInt<1>::fromU64(2)).isIdentity());
    EXPECT_FALSE(pmul(g, BigInt<1>::fromU64(3)).isIdentity());
}

TEST(G2, GroupLaws)
{
    Prng prng(0x62);
    using Xyzz = XYZZPoint<Bn254G2>;
    const Xyzz g = Xyzz::fromAffine(Bn254G2::generator());
    const Xyzz p = pmul(g, BigInt<1>::fromU64(12345));
    const Xyzz q = pmul(g, BigInt<1>::fromU64(67890));
    EXPECT_EQ(padd(p, q), padd(q, p));
    EXPECT_EQ(padd(p, p), pdbl(p));
    EXPECT_TRUE(padd(p, p.negated()).isIdentity());
    EXPECT_EQ(pacc(p, q.toAffine()), padd(p, q));
    EXPECT_EQ(padd(p, q), pmul(g, BigInt<1>::fromU64(80235)));
}

TEST(G2, ModularScalarArithmeticCommutes)
{
    // [a mod r]G + [b mod r]G == [(a + b) mod r]G: requires the
    // r-torsion property the cofactor clearing guarantees.
    using Xyzz = XYZZPoint<Bn254G2>;
    const Xyzz g = Xyzz::fromAffine(Bn254G2::generator());
    Prng prng(0x63);
    const auto a = Bn254Fr::random(prng);
    const auto b = Bn254Fr::random(prng);
    const auto sum = a + b; // reduced mod r
    EXPECT_EQ(padd(pmul(g, a.toRaw()), pmul(g, b.toRaw())),
              pmul(g, sum.toRaw()));
}

TEST(G2, MsmThroughTheGenericStack)
{
    // The same workload generator, references and distributed
    // engine run over G2 unchanged.
    Prng prng(0x64);
    const auto points = msm::generatePoints<Bn254G2>(40, prng);
    for (const auto &p : points)
        EXPECT_TRUE(p.isOnCurve());
    const auto scalars = msm::generateScalars<Bn254G2>(40, prng);
    const auto naive = msm::msmNaive<Bn254G2>(points, scalars);
    EXPECT_EQ(msm::msmSerialPippenger<Bn254G2>(points, scalars, 8),
              naive);

    msm::MsmOptions options;
    options.windowBitsOverride = 6;
    options.scatter.blockDim = 64;
    options.scatter.gridDim = 2;
    const gpusim::Cluster cluster(gpusim::DeviceSpec::a100(), 4);
    const auto result = msm::computeDistMsm<Bn254G2>(
        points, scalars, cluster, options);
    EXPECT_EQ(result.value, naive);
}

} // namespace
} // namespace distmsm
