/**
 * @file
 * Straggler-aware degradation tests: the fault grammar's
 * degrade/flaky/hang clauses, the FaultReport and DeviceHealth
 * merge-completeness KATs, the HealthTracker escalation ladder, the
 * engine's watchdog speculation, quarantine-driven re-planning, and
 * the chaos-soak differential sweep.
 *
 * The contract (DESIGN.md Sections 6 and 11): every recovery path —
 * speculation, transfer failover, quarantine resharding — returns a
 * value bit-identical to the fault-free run at every hostThreads
 * setting, and the watchdog's priced wait is strictly below the
 * stall a watchdog-less run would suffer.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "src/ec/curves.h"
#include "src/gpusim/health.h"
#include "src/msm/distmsm.h"
#include "src/msm/workload.h"
#include "src/support/metrics.h"
#include "src/support/prng.h"
#include "src/support/trace.h"

namespace distmsm::msm {
namespace {

using gpusim::Cluster;
using gpusim::DeviceSpec;
using gpusim::DeviceHealth;
using gpusim::FaultKind;
using gpusim::FaultPlan;
using gpusim::FaultReport;
using gpusim::HealthPolicy;
using gpusim::HealthState;
using gpusim::HealthTracker;
using gpusim::TransferFault;
using support::StatusCode;

MsmOptions
healthTestOptions(unsigned s = 8)
{
    MsmOptions o;
    o.windowBitsOverride = s;
    o.scatter.blockDim = 64;
    o.scatter.gridDim = 4;
    o.scatter.sharedBytesPerBlock = 128 * 1024;
    return o;
}

template <typename Curve>
struct Workload
{
    std::vector<AffinePoint<Curve>> points;
    std::vector<BigInt<Curve::Fr::kLimbs>> scalars;
};

template <typename Curve>
Workload<Curve>
makeWorkload(std::size_t n, std::uint64_t seed)
{
    Prng prng(seed);
    Workload<Curve> w;
    w.points = generatePoints<Curve>(n, prng);
    w.scalars = generateScalars<Curve>(n, prng);
    return w;
}

// --- Fault grammar: degrade / flaky / hang / @attempt ----------------

TEST(StragglerGrammar, AcceptsDegradeFlakyHang)
{
    const auto plan_or = FaultPlan::parse(
        "degrade:dev=0,factor=4@win=1;flaky:dev=3,p=0.5;"
        "hang:dev=2@win=2;delay:dev=1,ns=5e8@attempt=1");
    ASSERT_TRUE(plan_or.isOk()) << plan_or.status().toString();
    const FaultPlan &plan = *plan_or;
    ASSERT_EQ(plan.events.size(), 4u);

    EXPECT_TRUE(plan.hasStragglerFaults());
    EXPECT_TRUE(plan.degraded(0));
    EXPECT_FALSE(plan.degraded(3));
    // Onset ordinal: healthy before win=1, 4x slower from it on.
    EXPECT_DOUBLE_EQ(plan.degradeFactor(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(plan.degradeFactor(0, 1), 4.0);
    EXPECT_DOUBLE_EQ(plan.degradeFactor(0, 7), 4.0);
    EXPECT_DOUBLE_EQ(plan.degradeFactor(1, 7), 1.0);

    EXPECT_DOUBLE_EQ(plan.flakyProbability(3), 0.5);
    EXPECT_DOUBLE_EQ(plan.flakyProbability(0), 0.0);

    EXPECT_EQ(plan.hangWindow(2), 2);
    EXPECT_EQ(plan.hangWindow(0), -1);

    // @attempt routes the delay to the named retry, not the first.
    EXPECT_DOUBLE_EQ(plan.transferDelayNs(1, 0), 0.0);
    EXPECT_DOUBLE_EQ(plan.transferDelayNs(1, 1), 5e8);
    EXPECT_DOUBLE_EQ(plan.transferDelayNs(1, 2), 0.0);
}

TEST(StragglerGrammar, DegradeFactorsCompound)
{
    const auto plan_or = FaultPlan::parse(
        "degrade:dev=1,factor=2;degrade:dev=1,factor=3@win=2");
    ASSERT_TRUE(plan_or.isOk());
    EXPECT_DOUBLE_EQ(plan_or->degradeFactor(1, 0), 2.0);
    EXPECT_DOUBLE_EQ(plan_or->degradeFactor(1, 1), 2.0);
    EXPECT_DOUBLE_EQ(plan_or->degradeFactor(1, 2), 6.0);
}

TEST(StragglerGrammar, RejectsMalformedClauses)
{
    const char *bad[] = {
        "degrade:dev=0",              // degrade without factor
        "degrade:factor=2",           // degrade without dev
        "degrade:dev=0,factor=0.5",   // slowdown below 1
        "degrade:dev=0,factor=nan",   // non-finite factor
        "flaky:dev=0",                // flaky without p
        "flaky:p=0.5",                // flaky without dev
        "flaky:dev=0,p=1.5",          // probability above 1
        "flaky:dev=0,p=-0.1",         // negative probability
        "hang:win=1",                 // hang without dev
        "delay:dev=0,ns=-5",          // negative delay
        "delay:dev=0,ns=nan",         // non-finite delay
        "delay:dev=0,ns=inf",         // non-finite delay
    };
    for (const char *spec : bad) {
        const auto plan_or = FaultPlan::parse(spec);
        EXPECT_FALSE(plan_or.isOk()) << spec;
        if (!plan_or.isOk()) {
            EXPECT_EQ(plan_or.status().code(),
                      StatusCode::InvalidArgument)
                << spec;
        }
    }
}

TEST(StragglerGrammar, FlakyCoinIsSeededAndDeterministic)
{
    const auto plan_or = FaultPlan::parse("flaky:dev=1,p=0.5;seed:9");
    ASSERT_TRUE(plan_or.isOk());
    const FaultPlan &plan = *plan_or;
    // Same (seed, transfer index) -> same outcome, every time.
    int corrupted = 0;
    for (std::uint64_t x = 0; x < 256; ++x) {
        const TransferFault first = plan.transferFault(x, 1);
        EXPECT_EQ(first, plan.transferFault(x, 1));
        EXPECT_EQ(plan.transferFault(x, 0), TransferFault::None);
        if (first == TransferFault::Flaky)
            ++corrupted;
    }
    // A fair seeded coin at p=0.5 lands well inside [64, 192].
    EXPECT_GT(corrupted, 64);
    EXPECT_LT(corrupted, 192);

    // p=1 corrupts every transfer; p=0 none.
    const auto always = FaultPlan::parse("flaky:dev=1,p=1");
    ASSERT_TRUE(always.isOk());
    const auto never = FaultPlan::parse("flaky:dev=1,p=0");
    ASSERT_TRUE(never.isOk());
    for (std::uint64_t x = 0; x < 64; ++x) {
        EXPECT_EQ(always->transferFault(x, 1), TransferFault::Flaky);
        EXPECT_EQ(never->transferFault(x, 1), TransferFault::None);
    }
}

// --- Merge-completeness KATs -----------------------------------------

TEST(MergeKat, FaultReportMergeFoldsEveryField)
{
    // Layout pin: 22 8-byte fields, no padding.
    static_assert(sizeof(FaultReport) ==
                  FaultReport::kFieldCount * sizeof(std::uint64_t));

    // Give every field a distinct non-zero value, in declaration
    // order. A field added to the struct without extending this KAT
    // trips the kFieldCount static_assert first.
    FaultReport src;
    std::uint64_t v = 1;
    src.faultsInjected = v++;
    src.corruptInjected = v++;
    src.corruptDetected = v++;
    src.timeouts = v++;
    src.retries = v++;
    src.windowsResharded = v++;
    src.reshardsIntraNode = v++;
    src.reshardsCrossNode = v++;
    src.devicesLost = v++;
    src.transfers = v++;
    src.checksummed = v++;
    src.verifyEcOps = v++;
    src.delayNs = static_cast<double>(v++);
    src.stragglersDetected = v++;
    src.stragglerRespawns = v++;
    src.speculativeWins = v++;
    src.speculativeLosses = v++;
    src.hangs = v++;
    src.transferFailovers = v++;
    src.backoffNs = static_cast<double>(v++);
    src.stragglerWaitNs = static_cast<double>(v++);
    src.stragglerStallNs = static_cast<double>(v++);
    ASSERT_EQ(v, FaultReport::kFieldCount + 1);

    // Round trip: merging into a zeroed report must reproduce the
    // source byte-for-byte — any field merge() forgot stays zero and
    // fails the memcmp.
    FaultReport dst;
    dst.merge(src);
    EXPECT_EQ(0, std::memcmp(&dst, &src, sizeof(FaultReport)));

    dst.merge(src);
    EXPECT_EQ(dst.faultsInjected, 2 * src.faultsInjected);
    EXPECT_EQ(dst.transferFailovers, 2 * src.transferFailovers);
    EXPECT_DOUBLE_EQ(dst.backoffNs, 2 * src.backoffNs);
    EXPECT_DOUBLE_EQ(dst.stragglerStallNs,
                     2 * src.stragglerStallNs);
}

TEST(MergeKat, DeviceHealthMergeFoldsEveryField)
{
    static_assert(sizeof(DeviceHealth) ==
                  DeviceHealth::kSlotCount * sizeof(std::uint64_t));

    DeviceHealth src;
    src.timeouts = 1;
    src.checksumFailures = 2;
    src.stragglerEvents = 3;
    src.hangs = 4;
    src.cleanWindows = 5;
    src.probes = 6;
    src.faultScore = 7;
    src.cleanStreak = 8;
    src.state = HealthState::Probation;

    DeviceHealth dst;
    dst.state = HealthState::Quarantined;
    dst.cleanStreak = 2;
    dst.merge(src);
    EXPECT_EQ(dst.timeouts, 1u);
    EXPECT_EQ(dst.checksumFailures, 2u);
    EXPECT_EQ(dst.stragglerEvents, 3u);
    EXPECT_EQ(dst.hangs, 4u);
    EXPECT_EQ(dst.cleanWindows, 5u);
    EXPECT_EQ(dst.probes, 6u);
    EXPECT_EQ(dst.faultScore, 7);
    // Streak takes the pessimistic minimum, state the worse rung.
    EXPECT_EQ(dst.cleanStreak, 2);
    EXPECT_EQ(dst.state, HealthState::Quarantined);
}

// --- HealthTracker ladder --------------------------------------------

TEST(HealthLadder, EscalatesThroughProbationToQuarantine)
{
    HealthTracker t(4);
    EXPECT_EQ(t.numDevices(), 4);
    EXPECT_EQ(t.state(1), HealthState::Healthy);
    const std::uint64_t g0 = t.generation();

    t.recordChecksumFailure(1);
    EXPECT_EQ(t.state(1), HealthState::Probation);
    EXPECT_TRUE(t.schedulable(1));
    EXPECT_GT(t.generation(), g0);

    t.recordTimeout(1);
    EXPECT_EQ(t.state(1), HealthState::Probation);
    t.recordStraggler(1);
    EXPECT_EQ(t.state(1), HealthState::Quarantined);
    EXPECT_FALSE(t.schedulable(1));
    EXPECT_EQ(t.numQuarantined(), 1);
    EXPECT_EQ(t.schedulableDevices(),
              (std::vector<int>{0, 2, 3}));
    EXPECT_EQ(t.device(1).checksumFailures, 1u);
    EXPECT_EQ(t.device(1).timeouts, 1u);
    EXPECT_EQ(t.device(1).stragglerEvents, 1u);
}

TEST(HealthLadder, HangQuarantinesImmediately)
{
    HealthTracker t(2);
    t.recordHang(0);
    EXPECT_EQ(t.state(0), HealthState::Quarantined);
    EXPECT_EQ(t.device(0).hangs, 1u);
    EXPECT_EQ(t.schedulableDevices(), (std::vector<int>{1}));
}

TEST(HealthLadder, CleanWindowsReintegrateProbation)
{
    HealthTracker t(2);
    t.recordChecksumFailure(0);
    ASSERT_EQ(t.state(0), HealthState::Probation);
    const std::uint64_t g = t.generation();

    const int need = t.policy().reintegrateCleanWindows;
    for (int i = 0; i < need - 1; ++i)
        t.recordCleanWindow(0);
    EXPECT_EQ(t.state(0), HealthState::Probation);
    // A fault resets the streak: reintegration starts over.
    t.recordTimeout(0);
    for (int i = 0; i < need - 1; ++i)
        t.recordCleanWindow(0);
    EXPECT_EQ(t.state(0), HealthState::Probation);
    t.recordCleanWindow(0);
    EXPECT_EQ(t.state(0), HealthState::Healthy);
    EXPECT_EQ(t.device(0).faultScore, 0);
    EXPECT_GT(t.generation(), g);
}

TEST(HealthLadder, CleanProbeParolesQuarantineToProbation)
{
    HealthTracker t(2);
    t.recordHang(1);
    ASSERT_EQ(t.state(1), HealthState::Quarantined);
    // Clean windows do NOT redeem a quarantined device...
    for (int i = 0; i < 8; ++i)
        t.recordCleanWindow(1);
    EXPECT_EQ(t.state(1), HealthState::Quarantined);
    // ...only a clean probe does, and only back to Probation.
    t.recordCleanProbe(1);
    EXPECT_EQ(t.state(1), HealthState::Probation);
    EXPECT_EQ(t.device(1).probes, 1u);
    EXPECT_EQ(t.device(1).cleanStreak, 0);
    const int need = t.policy().reintegrateCleanWindows;
    for (int i = 0; i < need; ++i)
        t.recordCleanWindow(1);
    EXPECT_EQ(t.state(1), HealthState::Healthy);
}

TEST(HealthLadder, RecordMetricsExportsGauges)
{
    HealthTracker t(3);
    t.recordHang(2);
    t.recordChecksumFailure(0);
    support::MetricsRegistry metrics;
    t.recordMetrics(metrics);
    EXPECT_DOUBLE_EQ(metrics.value("health/devices"), 3.0);
    EXPECT_DOUBLE_EQ(metrics.value("health/quarantined_devices"),
                     1.0);
    EXPECT_DOUBLE_EQ(metrics.value("health/probation_devices"), 1.0);
    EXPECT_DOUBLE_EQ(metrics.value("health/hangs"), 1.0);
    EXPECT_DOUBLE_EQ(metrics.value("health/checksum_failures"), 1.0);
    EXPECT_GE(metrics.value("health/generation"), 2.0);
}

// --- Watchdog speculation (engine) -----------------------------------

class WatchdogTest : public ::testing::Test
{
  protected:
    static constexpr std::size_t kN = std::size_t{1} << 12;

    void
    SetUp() override
    {
        workload_ = makeWorkload<Bn254>(kN, 0x4EA1);
        const auto clean_or = tryComputeDistMsm<Bn254>(
            workload_.points, workload_.scalars, cluster_,
            healthTestOptions());
        ASSERT_TRUE(clean_or.isOk());
        clean_ = *clean_or;
    }

    Cluster cluster_{DeviceSpec::a100(), 8};
    Workload<Bn254> workload_;
    MsmResult<Bn254> clean_;
};

TEST_F(WatchdogTest, DegradedDeviceSpeculatesBitIdentically)
{
    // The acceptance gate: degrade:dev=0,factor=4 on 8 devices
    // completes with speculative re-execution and the result is
    // bit-identical to the fault-free run at every hostThreads.
    for (const int threads : {1, 4, 8}) {
        auto options = healthTestOptions();
        options.hostThreads = threads;
        const auto plan_or =
            FaultPlan::parse("degrade:dev=0,factor=4");
        ASSERT_TRUE(plan_or.isOk());
        options.faults = *plan_or;
        const auto result_or = tryComputeDistMsm<Bn254>(
            workload_.points, workload_.scalars, cluster_, options);
        ASSERT_TRUE(result_or.isOk())
            << result_or.status().toString();
        const auto &r = *result_or;
        EXPECT_TRUE(bitEqual(r.value, clean_.value))
            << "hostThreads=" << threads;
        EXPECT_EQ(r.stats, clean_.stats);
        EXPECT_EQ(r.hostOps, clean_.hostOps);
        EXPECT_GE(r.fault.stragglersDetected, 1u);
        EXPECT_GE(r.fault.stragglerRespawns, 1u);
        EXPECT_EQ(r.fault.stragglerRespawns,
                  r.fault.speculativeWins +
                      r.fault.speculativeLosses);
        // The watchdog's priced wait beats the un-watched stall.
        EXPECT_GT(r.fault.stragglerStallNs, 0.0);
        EXPECT_LT(r.fault.stragglerWaitNs,
                  r.fault.stragglerStallNs);
    }
}

TEST_F(WatchdogTest, MildDegradeStretchesWithoutRespawn)
{
    // factor below the slack: the deadline never fires.
    auto options = healthTestOptions();
    const auto plan_or =
        FaultPlan::parse("degrade:dev=3,factor=1.5");
    ASSERT_TRUE(plan_or.isOk());
    options.faults = *plan_or;
    const auto result_or = tryComputeDistMsm<Bn254>(
        workload_.points, workload_.scalars, cluster_, options);
    ASSERT_TRUE(result_or.isOk());
    EXPECT_TRUE(bitEqual(result_or->value, clean_.value));
    EXPECT_EQ(result_or->fault.stragglerRespawns, 0u);
    EXPECT_GT(result_or->fault.stragglerWaitNs, 0.0);
}

TEST_F(WatchdogTest, HangRecoversWithWatchdogFailsWithout)
{
    auto options = healthTestOptions();
    const auto plan_or = FaultPlan::parse("hang:dev=2@win=1");
    ASSERT_TRUE(plan_or.isOk());
    options.faults = *plan_or;
    const auto result_or = tryComputeDistMsm<Bn254>(
        workload_.points, workload_.scalars, cluster_, options);
    ASSERT_TRUE(result_or.isOk())
        << result_or.status().toString();
    EXPECT_TRUE(bitEqual(result_or->value, clean_.value));
    EXPECT_EQ(result_or->fault.hangs, 1u);
    EXPECT_GE(result_or->fault.speculativeWins, 1u);
    EXPECT_EQ(result_or->stats, clean_.stats);
    EXPECT_EQ(result_or->hostOps, clean_.hostOps);

    auto no_watchdog = options;
    no_watchdog.watchdog = false;
    const auto fail_or = tryComputeDistMsm<Bn254>(
        workload_.points, workload_.scalars, cluster_, no_watchdog);
    ASSERT_FALSE(fail_or.isOk());
    EXPECT_EQ(fail_or.status().code(), StatusCode::TransferTimeout);
}

TEST_F(WatchdogTest, FlakyWithoutTrackerExhaustsRetries)
{
    // flaky:p=1 is a persistently corrupt link; without a health
    // tracker there is no failover and the typed error surfaces.
    auto options = healthTestOptions();
    const auto plan_or = FaultPlan::parse("flaky:dev=0,p=1");
    ASSERT_TRUE(plan_or.isOk());
    options.faults = *plan_or;
    const auto result_or = tryComputeDistMsm<Bn254>(
        workload_.points, workload_.scalars, cluster_, options);
    ASSERT_FALSE(result_or.isOk());
    EXPECT_EQ(result_or.status().code(),
              StatusCode::TransferCorrupt);
}

TEST_F(WatchdogTest, DelayOnRetryBacksOffAndRecovers)
{
    // @attempt=1 hits the first retry (forced by a one-shot
    // corruption): the backoff price lands in the report and the
    // run still recovers bit-identically.
    auto options = healthTestOptions();
    const auto plan_or =
        FaultPlan::parse("corrupt:xfer=0;delay:dev=0,ns=1@attempt=1");
    ASSERT_TRUE(plan_or.isOk());
    options.faults = *plan_or;
    const auto result_or = tryComputeDistMsm<Bn254>(
        workload_.points, workload_.scalars, cluster_, options);
    ASSERT_TRUE(result_or.isOk())
        << result_or.status().toString();
    EXPECT_TRUE(bitEqual(result_or->value, clean_.value));
    EXPECT_GE(result_or->fault.retries, 1u);
    EXPECT_GT(result_or->fault.backoffNs, 0.0);
    EXPECT_GT(result_or->fault.delayNs, 0.0);
}

// --- Timeline pricing -------------------------------------------------

TEST(WatchdogTimeline, SpeculationBeatsTheStall)
{
    // Acceptance gate: with the watchdog, the priced makespan under
    // degrade:dev=0,factor=4 is strictly below the no-watchdog
    // stall behind the straggler.
    const auto curve = gpusim::CurveProfile::bn254();
    const Cluster cluster(DeviceSpec::a100(), 8);
    auto options = healthTestOptions();
    const auto plan_or = FaultPlan::parse("degrade:dev=0,factor=4");
    ASSERT_TRUE(plan_or.isOk());
    options.faults = *plan_or;

    const auto watched =
        estimateDistMsm(curve, 1ull << 18, cluster, options);
    auto off = options;
    off.watchdog = false;
    const auto stalled =
        estimateDistMsm(curve, 1ull << 18, cluster, off);
    EXPECT_GT(watched.stragglerNs, 0.0);
    EXPECT_LT(watched.stragglerNs, stalled.stragglerNs);
    EXPECT_LT(watched.totalNs(), stalled.totalNs());

    // Fault-free pricing is untouched by the watchdog knobs.
    auto clean = healthTestOptions();
    const auto base =
        estimateDistMsm(curve, 1ull << 18, cluster, clean);
    clean.watchdog = false;
    const auto base_off =
        estimateDistMsm(curve, 1ull << 18, cluster, clean);
    EXPECT_DOUBLE_EQ(base.totalNs(), base_off.totalNs());
    EXPECT_DOUBLE_EQ(base.stragglerNs, 0.0);
    EXPECT_DOUBLE_EQ(base.backoffNs, 0.0);
    EXPECT_LT(base.totalNs(), watched.totalNs());
}

TEST(WatchdogTimeline, FlakyLinksPriceTheirBackoff)
{
    const auto curve = gpusim::CurveProfile::bn254();
    const Cluster cluster(DeviceSpec::a100(), 4);
    auto options = healthTestOptions();
    const auto plan_or = FaultPlan::parse("flaky:dev=1,p=0.5");
    ASSERT_TRUE(plan_or.isOk());
    options.faults = *plan_or;
    const auto t =
        estimateDistMsm(curve, 1ull << 16, cluster, options);
    EXPECT_GT(t.backoffNs, 0.0);
    EXPECT_DOUBLE_EQ(t.stragglerNs, 0.0);
    EXPECT_GT(t.totalNs(), t.gpuStageNs());
}

// --- Quarantine, re-planning and probes ------------------------------

TEST(Quarantine, PlanningClusterExcludesQuarantinedDevices)
{
    const Cluster cluster(DeviceSpec::a100(), 8);
    HealthTracker tracker(8);
    EXPECT_EQ(planningCluster(cluster, &tracker).numGpus(), 8);
    EXPECT_EQ(planningCluster(cluster, nullptr).numGpus(), 8);
    tracker.recordHang(5);
    const Cluster shrunk = planningCluster(cluster, &tracker);
    EXPECT_EQ(shrunk.numGpus(), 7);

    // The planner sees the shrunken fleet: the same plan as an
    // explicitly 7-GPU cluster carries.
    const auto curve = gpusim::CurveProfile::bn254();
    auto options = healthTestOptions();
    options.health = &tracker;
    const auto with_health =
        planMsm(curve, 1ull << 16, cluster, options);
    options.health = nullptr;
    const auto over_seven =
        planMsm(curve, 1ull << 16, shrunk, options);
    EXPECT_EQ(with_health.windowsPerGpu, over_seven.windowsPerGpu);
    EXPECT_EQ(with_health.numWindows, over_seven.numWindows);
}

TEST(Quarantine, FlakyDeviceQuarantinesThenReplansWithoutIt)
{
    // The second acceptance gate: flaky:dev=2,p=1 under a tracker
    // fails over (result still bit-identical), drives device 2 to
    // Quarantined, and the next compute re-plans over the 7
    // survivors — no transfer from device 2 ever happens again, so
    // no corruption is even injected.
    const Cluster cluster(DeviceSpec::a100(), 8);
    const auto w = makeWorkload<Bn254>(1 << 12, 0x9A11);

    auto clean_options = healthTestOptions();
    const auto clean_or = tryComputeDistMsm<Bn254>(
        w.points, w.scalars, cluster, clean_options);
    ASSERT_TRUE(clean_or.isOk());

    HealthTracker tracker(8);
    auto options = healthTestOptions();
    const auto plan_or = FaultPlan::parse("flaky:dev=2,p=1");
    ASSERT_TRUE(plan_or.isOk());
    options.faults = *plan_or;
    options.health = &tracker;
    MsmEngine<Bn254> engine(w.points, cluster, options);

    const auto first_or = engine.tryCompute(w.scalars);
    ASSERT_TRUE(first_or.isOk()) << first_or.status().toString();
    EXPECT_TRUE(bitEqual(first_or->value, clean_or->value));
    EXPECT_EQ(first_or->stats, clean_or->stats);
    EXPECT_GE(first_or->fault.transferFailovers, 1u);
    EXPECT_GE(first_or->fault.corruptDetected, 3u);
    EXPECT_EQ(tracker.state(2), HealthState::Quarantined);
    EXPECT_GE(tracker.device(2).checksumFailures, 3u);

    // Second run: stale generation -> re-plan over the survivors;
    // device 2 is never scheduled, so the flaky link goes silent.
    support::TraceRecorder trace;
    // (tracker state persists; the trace captures the health gauges)
    const auto second_or = engine.tryCompute(w.scalars);
    ASSERT_TRUE(second_or.isOk()) << second_or.status().toString();
    EXPECT_TRUE(bitEqual(second_or->value, clean_or->value));
    EXPECT_EQ(second_or->fault.corruptInjected, 0u);
    EXPECT_EQ(second_or->fault.corruptDetected, 0u);
    EXPECT_EQ(second_or->fault.transferFailovers, 0u);
    EXPECT_EQ(second_or->plan.windowsPerGpu,
              planMsm(gpusim::CurveProfile::bn254(), w.points.size(),
                      planningCluster(cluster, &tracker),
                      clean_options)
                  .windowsPerGpu);

    // The probe rides the same flaky link (p=1 corrupts it too):
    // no parole, one more checksum failure on the books.
    const auto probes_before = tracker.device(2).checksumFailures;
    EXPECT_EQ(engine.probeQuarantinedDevices(), 0);
    EXPECT_EQ(tracker.state(2), HealthState::Quarantined);
    EXPECT_EQ(tracker.device(2).checksumFailures,
              probes_before + 1);
}

TEST(Quarantine, CleanProbeParolesAndCleanWindowsReintegrate)
{
    // A device quarantined for a past hang, probed over a now-clean
    // link: parole to Probation, re-plan brings it back into the
    // rotation, and its clean windows walk it home to Healthy.
    const Cluster cluster(DeviceSpec::a100(), 8);
    const auto w = makeWorkload<Bn254>(1 << 12, 0x9A12);

    HealthTracker tracker(8);
    tracker.recordHang(1);
    ASSERT_EQ(tracker.state(1), HealthState::Quarantined);

    auto options = healthTestOptions();
    options.health = &tracker;
    MsmEngine<Bn254> engine(w.points, cluster, options);
    // Planned post-quarantine: 7 schedulable devices.
    const auto first_or = engine.tryCompute(w.scalars);
    ASSERT_TRUE(first_or.isOk());

    ASSERT_EQ(engine.probeQuarantinedDevices(), 1);
    EXPECT_EQ(tracker.state(1), HealthState::Probation);
    EXPECT_EQ(tracker.device(1).probes, 1u);

    // The parole bumped the generation: the next compute re-plans
    // over all 8 and device 1's fault-free windows reintegrate it.
    const auto second_or = engine.tryCompute(w.scalars);
    ASSERT_TRUE(second_or.isOk());
    EXPECT_TRUE(bitEqual(second_or->value, first_or->value));
    EXPECT_EQ(tracker.state(1), HealthState::Healthy);
    EXPECT_EQ(tracker.device(1).faultScore, 0);
    EXPECT_GE(tracker.device(1).cleanWindows,
              static_cast<std::uint64_t>(
                  tracker.policy().reintegrateCleanWindows));
}

TEST(Quarantine, MetricsSurfaceHealthAndStragglerCounters)
{
    const Cluster cluster(DeviceSpec::a100(), 8);
    const auto w = makeWorkload<Bn254>(1 << 12, 0x9A13);
    HealthTracker tracker(8);
    support::TraceRecorder trace;
    auto options = healthTestOptions();
    const auto plan_or =
        FaultPlan::parse("degrade:dev=0,factor=4;flaky:dev=2,p=1");
    ASSERT_TRUE(plan_or.isOk());
    options.faults = *plan_or;
    options.health = &tracker;
    options.trace = &trace;
    const auto result_or = tryComputeDistMsm<Bn254>(
        w.points, w.scalars, cluster, options);
    ASSERT_TRUE(result_or.isOk()) << result_or.status().toString();

    const auto &metrics = trace.metrics();
    EXPECT_GE(metrics.value("fault/stragglers_detected"), 1.0);
    EXPECT_GE(metrics.value("fault/straggler_respawns"), 1.0);
    EXPECT_DOUBLE_EQ(
        metrics.value("fault/straggler_respawns"),
        metrics.value("fault/speculative_wins") +
            metrics.value("fault/speculative_losses"));
    EXPECT_GE(metrics.value("fault/transfer_failovers"), 1.0);
    EXPECT_GT(metrics.value("fault/backoff_ns"), 0.0);
    EXPECT_GT(metrics.value("fault/straggler_stall_ns"),
              metrics.value("fault/straggler_wait_ns"));
    EXPECT_DOUBLE_EQ(metrics.value("health/devices"), 8.0);
    // Both offenders end up quarantined: the flaky link after three
    // checksum failures, and the persistent 4x straggler after
    // blowing three window deadlines.
    EXPECT_DOUBLE_EQ(metrics.value("health/quarantined_devices"),
                     2.0);
    EXPECT_GE(metrics.value("health/straggler_events"), 1.0);
}

// --- Chaos soak -------------------------------------------------------

TEST(ChaosSoak, MixedFaultSweepStaysBitIdentical)
{
    // Differential soak: degrade + hang + kill + one-shot corruption
    // + a flaky link (failover via the tracker), across seeds and
    // hostThreads — every run must match the fault-free value,
    // stats and hostOps exactly, and the fault pipeline itself must
    // not drift across thread counts.
    const Cluster cluster(DeviceSpec::a100(), 8);
    const auto w = makeWorkload<Bn254>(1 << 11, 0xC4A0);

    const auto clean_or = tryComputeDistMsm<Bn254>(
        w.points, w.scalars, cluster, healthTestOptions());
    ASSERT_TRUE(clean_or.isOk());

    for (const std::uint64_t seed : {11ull, 77ull, 3030ull}) {
        gpusim::FaultReport reference;
        bool have_reference = false;
        for (const int threads : {1, 4}) {
            HealthTracker tracker(8);
            auto options = healthTestOptions();
            options.hostThreads = threads;
            options.health = &tracker;
            const auto plan_or = FaultPlan::parse(
                "degrade:dev=1,factor=3;hang:dev=2@win=1;"
                "kill:dev=3;corrupt:xfer=5;flaky:dev=4,p=0.3;"
                "seed:" + std::to_string(seed));
            ASSERT_TRUE(plan_or.isOk());
            options.faults = *plan_or;
            const auto result_or = tryComputeDistMsm<Bn254>(
                w.points, w.scalars, cluster, options);
            ASSERT_TRUE(result_or.isOk())
                << "seed=" << seed << " threads=" << threads
                << ": " << result_or.status().toString();
            const auto &r = *result_or;
            EXPECT_TRUE(bitEqual(r.value, clean_or->value))
                << "seed=" << seed << " threads=" << threads;
            EXPECT_EQ(r.stats, clean_or->stats);
            EXPECT_EQ(r.hostOps, clean_or->hostOps);
            EXPECT_EQ(r.fault.devicesLost, 1u);
            EXPECT_EQ(r.fault.hangs, 1u);
            EXPECT_GE(r.fault.stragglerRespawns, 1u);
            if (!have_reference) {
                reference = r.fault;
                have_reference = true;
            } else {
                // The whole report — injection, recovery, pricing —
                // is deterministic across hostThreads.
                EXPECT_EQ(0, std::memcmp(&r.fault, &reference,
                                         sizeof reference))
                    << "seed=" << seed;
            }
        }
    }
}

} // namespace
} // namespace distmsm::msm
