/**
 * @file
 * Tests for BigInt<N>: limb arithmetic, shifts, comparisons and the
 * full multiplication, cross-checked against an independent base-2^32
 * reference implementation.
 */

#include <gtest/gtest.h>

#include <vector>

#include "src/bigint/bigint.h"
#include "src/support/prng.h"

namespace distmsm {
namespace {

/** Reference big-number in base 2^32 used to cross-check BigInt. */
class RefNum
{
  public:
    template <std::size_t N>
    static RefNum
    from(const BigInt<N> &v)
    {
        RefNum r;
        for (std::size_t i = 0; i < N; ++i) {
            r.d_.push_back(static_cast<std::uint32_t>(v.limb[i]));
            r.d_.push_back(static_cast<std::uint32_t>(v.limb[i] >> 32));
        }
        return r;
    }

    RefNum
    mul(const RefNum &o) const
    {
        RefNum r;
        r.d_.assign(d_.size() + o.d_.size(), 0);
        for (std::size_t i = 0; i < d_.size(); ++i) {
            std::uint64_t carry = 0;
            for (std::size_t j = 0; j < o.d_.size(); ++j) {
                const std::uint64_t cur =
                    static_cast<std::uint64_t>(d_[i]) * o.d_[j] +
                    r.d_[i + j] + carry;
                r.d_[i + j] = static_cast<std::uint32_t>(cur);
                carry = cur >> 32;
            }
            r.d_[i + o.d_.size()] = static_cast<std::uint32_t>(carry);
        }
        return r;
    }

    RefNum
    add(const RefNum &o) const
    {
        RefNum r;
        const std::size_t n = std::max(d_.size(), o.d_.size()) + 1;
        r.d_.assign(n, 0);
        std::uint64_t carry = 0;
        for (std::size_t i = 0; i < n; ++i) {
            std::uint64_t cur = carry;
            if (i < d_.size())
                cur += d_[i];
            if (i < o.d_.size())
                cur += o.d_[i];
            r.d_[i] = static_cast<std::uint32_t>(cur);
            carry = cur >> 32;
        }
        return r;
    }

    std::uint32_t
    digit(std::size_t i) const
    {
        return i < d_.size() ? d_[i] : 0;
    }

  private:
    std::vector<std::uint32_t> d_;
};

using B4 = BigInt<4>;
using B6 = BigInt<6>;

TEST(BigInt, ZeroAndFromU64)
{
    EXPECT_TRUE(B4::zero().isZero());
    const B4 v = B4::fromU64(77);
    EXPECT_FALSE(v.isZero());
    EXPECT_TRUE(v.isU64(77));
    EXPECT_FALSE(v.isU64(78));
}

TEST(BigInt, Comparisons)
{
    const B4 a = B4::fromU64(5);
    B4 b = B4::fromU64(5);
    EXPECT_EQ(a, b);
    b.limb[3] = 1;
    EXPECT_LT(a, b);
    EXPECT_GT(b, a);
}

TEST(BigInt, AddSubRoundTrip)
{
    Prng prng(11);
    for (int i = 0; i < 200; ++i) {
        const B6 a = B6::random(prng);
        const B6 b = B6::random(prng);
        B6 s = a;
        const std::uint64_t carry = s.addInPlace(b);
        B6 d = s;
        const std::uint64_t borrow = d.subInPlace(b);
        EXPECT_EQ(d, a);
        EXPECT_EQ(carry, borrow) << "carry must equal borrow back";
    }
}

TEST(BigInt, AddCarryDetected)
{
    B4 a{};
    for (auto &l : a.limb)
        l = ~0ull;
    EXPECT_EQ(a.addInPlace(B4::fromU64(1)), 1u);
    EXPECT_TRUE(a.isZero());
}

TEST(BigInt, ShiftInverse)
{
    Prng prng(13);
    for (std::size_t k : {1u, 7u, 31u, 64u, 65u, 127u, 200u}) {
        B4 a = B4::random(prng);
        a.truncateToBits(256 - k);
        EXPECT_EQ(a.shl(k).shr(k), a) << "k=" << k;
    }
}

TEST(BigInt, ShrMatchesBitAccess)
{
    Prng prng(17);
    const B6 a = B6::random(prng);
    for (std::size_t k : {0u, 1u, 63u, 64u, 100u, 383u}) {
        const B6 s = a.shr(k);
        for (std::size_t i = 0; i + k < 384 && i < 64; ++i)
            EXPECT_EQ(s.bit(i), a.bit(i + k)) << "k=" << k << " i=" << i;
    }
}

TEST(BigInt, BitLength)
{
    EXPECT_EQ(B4::zero().bitLength(), 0u);
    EXPECT_EQ(B4::fromU64(1).bitLength(), 1u);
    EXPECT_EQ(B4::fromU64(0x80).bitLength(), 8u);
    B4 v{};
    v.limb[3] = 1;
    EXPECT_EQ(v.bitLength(), 193u);
}

TEST(BigInt, BitsWindowExtraction)
{
    // bits(offset, width) is the scalar-window primitive of Pippenger.
    Prng prng(19);
    for (int iter = 0; iter < 100; ++iter) {
        const B4 a = B4::random(prng);
        const std::size_t offset = prng.below(256);
        const std::size_t width = 1 + prng.below(20);
        const std::uint64_t got = a.bits(offset, width);
        std::uint64_t want = 0;
        for (std::size_t i = 0; i < width && offset + i < 256; ++i) {
            if (a.bit(offset + i))
                want |= std::uint64_t{1} << i;
        }
        EXPECT_EQ(got, want) << "offset=" << offset << " w=" << width;
    }
}

TEST(BigInt, WindowsReassembleScalar)
{
    // Concatenating all s-bit windows must reproduce the scalar:
    // sum_j 2^(j*s) * window_j == k.
    Prng prng(23);
    for (std::size_t s : {1u, 4u, 11u, 16u, 21u}) {
        const B4 k = B4::random(prng);
        B4 acc = B4::zero();
        const std::size_t n_win = (256 + s - 1) / s;
        for (std::size_t j = n_win; j-- > 0;) {
            const B4 w = B4::fromU64(k.bits(j * s, s));
            acc = acc.shl(s);
            acc.addInPlace(w);
        }
        EXPECT_EQ(acc, k) << "s=" << s;
    }
}

TEST(BigInt, TruncateToBits)
{
    Prng prng(29);
    B4 a = B4::random(prng);
    a.truncateToBits(100);
    EXPECT_LE(a.bitLength(), 100u);
    B4 b = B4::random(prng);
    b.truncateToBits(0);
    EXPECT_TRUE(b.isZero());
}

TEST(BigInt, RandomBelowRespectsBound)
{
    Prng prng(31);
    B4 bound = B4::fromU64(1000);
    for (int i = 0; i < 100; ++i)
        EXPECT_LT(B4::randomBelow(prng, bound), bound);
    bound = B4::random(prng);
    for (int i = 0; i < 100; ++i)
        EXPECT_LT(B4::randomBelow(prng, bound), bound);
}

TEST(BigInt, MulFullMatchesReference)
{
    Prng prng(37);
    for (int iter = 0; iter < 100; ++iter) {
        const B6 a = B6::random(prng);
        const B6 b = B6::random(prng);
        const auto got = mulFull(a, b);
        const RefNum want = RefNum::from(a).mul(RefNum::from(b));
        for (std::size_t i = 0; i < got.size(); ++i) {
            EXPECT_EQ(static_cast<std::uint32_t>(got[i]),
                      want.digit(2 * i));
            EXPECT_EQ(static_cast<std::uint32_t>(got[i] >> 32),
                      want.digit(2 * i + 1));
        }
    }
}

TEST(BigInt, MulFullCommutes)
{
    Prng prng(41);
    for (int iter = 0; iter < 50; ++iter) {
        const BigInt<12> a = BigInt<12>::random(prng);
        const BigInt<12> b = BigInt<12>::random(prng);
        EXPECT_EQ(mulFull(a, b), mulFull(b, a));
    }
}

TEST(BigInt, HexRoundTrip)
{
    Prng prng(43);
    for (int iter = 0; iter < 50; ++iter) {
        const B6 a = B6::random(prng);
        EXPECT_EQ(B6::fromHex(a.toHex()), a);
    }
}

TEST(BigInt, AddcSubbPrimitives)
{
    std::uint64_t carry = 0;
    EXPECT_EQ(addc(~0ull, 1, carry), 0u);
    EXPECT_EQ(carry, 1u);
    EXPECT_EQ(addc(0, 0, carry), 1u); // consumes carry-in
    EXPECT_EQ(carry, 0u);

    std::uint64_t borrow = 0;
    EXPECT_EQ(subb(0, 1, borrow), ~0ull);
    EXPECT_EQ(borrow, 1u);
    EXPECT_EQ(subb(5, 2, borrow), 2u); // consumes borrow-in
    EXPECT_EQ(borrow, 0u);
}

TEST(BigInt, MacPrimitive)
{
    std::uint64_t hi = 0;
    // (2^32)^2 = 2^64: low 0, hi 1.
    EXPECT_EQ(mac(1ull << 32, 1ull << 32, 0, 0, hi), 0u);
    EXPECT_EQ(hi, 1u);
    // Max case must not overflow 128 bits:
    // (2^64-1)^2 + 2*(2^64-1) = 2^128 - 1.
    EXPECT_EQ(mac(~0ull, ~0ull, ~0ull, ~0ull, hi), ~0ull);
    EXPECT_EQ(hi, ~0ull);
}

} // namespace
} // namespace distmsm
