/**
 * @file
 * Tests for the structured tracing and metrics layer: the recorder
 * and registry primitives, the deterministic Chrome-trace export,
 * the analytic-timeline span layout (spans must sum to totalNs()
 * under the overlap rules), and the engine-level guarantees that
 * (a) enabling tracing changes neither the result point nor the
 * KernelStats and (b) the exported trace and metrics are
 * byte-identical for every host-thread count.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "src/ec/curves.h"
#include "src/msm/distmsm.h"
#include "src/msm/pipeline.h"
#include "src/msm/workload.h"
#include "src/support/prng.h"
#include "src/support/trace.h"

namespace distmsm {
namespace {

using gpusim::Cluster;
using gpusim::DeviceSpec;
using support::MetricsRegistry;
using support::TraceRecorder;
namespace lane = support::tracelane;

TEST(Metrics, AddMaxSetSemantics)
{
    MetricsRegistry m;
    EXPECT_TRUE(m.empty());
    m.add("a", 2.0);
    m.add("a", 3.0);
    m.max("b", 5.0);
    m.max("b", 1.0);
    m.set("c", 7.0);
    m.set("c", 4.0);
    EXPECT_DOUBLE_EQ(m.value("a"), 5.0);
    EXPECT_DOUBLE_EQ(m.value("b"), 5.0);
    EXPECT_DOUBLE_EQ(m.value("c"), 4.0);
    EXPECT_DOUBLE_EQ(m.value("missing"), 0.0);
    EXPECT_EQ(m.size(), 3u);
}

TEST(Metrics, FormatValueIsDeterministic)
{
    // Exactly-representable integers render without a decimal point
    // so traces stay byte-stable across compilers.
    EXPECT_EQ(MetricsRegistry::formatValue(0.0), "0");
    EXPECT_EQ(MetricsRegistry::formatValue(42.0), "42");
    EXPECT_EQ(MetricsRegistry::formatValue(-3.0), "-3");
    EXPECT_EQ(MetricsRegistry::formatValue(1e15), "1000000000000000");
    EXPECT_EQ(MetricsRegistry::formatValue(2.5), "2.5");
    // Round-trippable float formatting for the rest.
    EXPECT_EQ(std::stod(MetricsRegistry::formatValue(0.1)), 0.1);
}

TEST(Metrics, JsonIsSortedByKey)
{
    MetricsRegistry m;
    m.set("z/last", 1.0);
    m.set("a/first", 2.0);
    m.set("m/mid", 3.5);
    std::ostringstream os;
    m.writeJson(os);
    const std::string json = os.str();
    EXPECT_LT(json.find("a/first"), json.find("m/mid"));
    EXPECT_LT(json.find("m/mid"), json.find("z/last"));
    EXPECT_NE(json.find("\"a/first\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"m/mid\": 3.5"), std::string::npos);
}

TEST(Trace, RecordsSpansInstantsAndFlows)
{
    TraceRecorder trace;
    trace.span("work", "phase", 1, 0, 100.0, 50.0,
               support::TraceArgs().arg("n", 3.0));
    trace.instant("marker", "phase", 1, 0, 120.0);
    trace.flow("xfer", 7, 1, 1, 150.0, 0, 0, 150.0);
    EXPECT_EQ(trace.eventCount(), 4u); // flow = 's' + 'f' pair

    const auto events = trace.snapshot();
    ASSERT_EQ(events.size(), 4u);
    // Sorted by timestamp.
    EXPECT_EQ(events[0].name, "work");
    EXPECT_EQ(events[0].ph, 'X');
    EXPECT_DOUBLE_EQ(events[0].durNs, 50.0);
    ASSERT_EQ(events[0].args.size(), 1u);
    EXPECT_EQ(events[0].args[0].first, "n");
    EXPECT_EQ(events[0].args[0].second, "3");
    EXPECT_EQ(events[1].ph, 'i');
    EXPECT_EQ(events[2].tsNs, 150.0);
    EXPECT_EQ(events[3].tsNs, 150.0);
}

TEST(Trace, ChromeJsonIsWellFormed)
{
    TraceRecorder trace;
    trace.labelProcess(1, "gpu0");
    trace.labelThread(1, 0, "compute");
    trace.span("scatter \"q\"", "phase", 1, 0, 1000.0, 500.0,
               support::TraceArgs().arg("kind", "naive"));
    std::ostringstream os;
    trace.writeChromeJson(os);
    const std::string json = os.str();
    EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
    EXPECT_NE(json.find("\"displayTimeUnit\":\"ns\""),
              std::string::npos);
    // Metadata lane names precede the events.
    EXPECT_LT(json.find("process_name"), json.find("scatter"));
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    // ts/dur exported in microseconds: 1000 ns -> 1 us.
    EXPECT_NE(json.find("\"ts\":1,"), std::string::npos);
    EXPECT_NE(json.find("\"dur\":0.5"), std::string::npos);
    // Quotes inside names are escaped.
    EXPECT_NE(json.find("scatter \\\"q\\\""), std::string::npos);
    EXPECT_NE(json.find("\"kind\":\"naive\""), std::string::npos);
}

TEST(Trace, ExportIsIndependentOfInsertionOrder)
{
    TraceRecorder forward, backward;
    for (int i = 0; i < 16; ++i)
        forward.span("s" + std::to_string(i), "c", i % 3, 0,
                     static_cast<double>(i % 5), 1.0);
    for (int i = 15; i >= 0; --i)
        backward.span("s" + std::to_string(i), "c", i % 3, 0,
                      static_cast<double>(i % 5), 1.0);
    std::ostringstream a, b;
    forward.writeChromeJson(a);
    backward.writeChromeJson(b);
    EXPECT_EQ(a.str(), b.str());
}

TEST(Trace, MetricsPathPairsWithTracePath)
{
    EXPECT_EQ(support::traceMetricsPath("trace.json"),
              "trace.metrics.json");
    EXPECT_EQ(support::traceMetricsPath("/tmp/x/run.json"),
              "/tmp/x/run.metrics.json");
    EXPECT_EQ(support::traceMetricsPath("noext"),
              "noext.metrics.json");
}

/** Max end time over events on the analytic device + host lanes. */
double
analyticLaneEnd(const std::vector<support::TraceEvent> &events,
                int num_gpus)
{
    double end = 0.0;
    for (const auto &e : events) {
        if (e.ph != 'X')
            continue;
        const bool device_lane =
            e.pid >= lane::kDevicePidBase &&
            e.pid < lane::kDevicePidBase + num_gpus;
        if (e.pid != lane::kHostPid && !device_lane)
            continue;
        end = std::max(end, e.tsNs + e.durNs);
    }
    return end;
}

TEST(Trace, TimelineSpansEndAtTotalNs)
{
    const auto curve = gpusim::CurveProfile::bn254();
    // Cover both reduce placements and both overlap settings.
    struct Case
    {
        unsigned windowBits;
        bool overlap;
        bool cpuReduce;
    };
    for (const Case &c :
         {Case{11, true, true}, Case{11, false, true},
          Case{22, true, false}, Case{11, true, false}}) {
        const Cluster cluster(DeviceSpec::a100(), 8);
        TraceRecorder trace;
        msm::MsmOptions options;
        options.windowBitsOverride = c.windowBits;
        options.overlapReduce = c.overlap;
        options.cpuBucketReduce = c.cpuReduce;
        options.trace = &trace;
        const auto t = msm::estimateDistMsm(curve, 1ull << 22,
                                            cluster, options);
        const double end =
            analyticLaneEnd(trace.snapshot(), cluster.numGpus());
        EXPECT_NEAR(end, t.totalNs(), 1e-6 * t.totalNs())
            << "s=" << c.windowBits << " overlap=" << c.overlap
            << " cpuReduce=" << c.cpuReduce;
        EXPECT_DOUBLE_EQ(
            trace.metrics().value("timeline/total_ns"), t.totalNs());
        // Per-device lanes must actually exist.
        bool device_span = false;
        for (const auto &e : trace.snapshot())
            device_span |= e.pid == lane::devicePid(1) && e.ph == 'X';
        EXPECT_TRUE(device_span);
    }
}

TEST(Trace, PipelineLanesMatchSchedule)
{
    const auto curve = gpusim::CurveProfile::bn254();
    const Cluster cluster(DeviceSpec::a100(), 8);
    TraceRecorder trace;
    msm::MsmOptions options;
    options.windowBitsOverride = 11;
    options.trace = &trace;
    const auto estimate = msm::estimateProvingPipeline(
        curve, 1ull << 22, cluster, options, 4);
    const auto slots = msm::pipelineSchedule(estimate.tasks);
    ASSERT_EQ(slots.size(), 4u);
    EXPECT_DOUBLE_EQ(slots.back().hostEndNs, estimate.pipelinedNs);
    // Each task's GPU span appears at its scheduled slot.
    const auto events = trace.snapshot();
    for (std::size_t i = 0; i < slots.size(); ++i) {
        const std::string name = "msm" + std::to_string(i) + "/gpu";
        const auto it = std::find_if(
            events.begin(), events.end(), [&](const auto &e) {
                return e.name == name &&
                       e.pid == lane::kPipelinePid;
            });
        ASSERT_NE(it, events.end()) << name;
        EXPECT_DOUBLE_EQ(it->tsNs, slots[i].gpuStartNs);
        EXPECT_DOUBLE_EQ(it->tsNs + it->durNs, slots[i].gpuEndNs);
    }
    EXPECT_DOUBLE_EQ(trace.metrics().value("pipeline/pipelined_ns"),
                     estimate.pipelinedNs);
}

msm::MsmOptions
engineOptions()
{
    msm::MsmOptions o;
    o.windowBitsOverride = 6;
    o.scatter.blockDim = 64;
    o.scatter.gridDim = 4;
    o.scatter.sharedBytesPerBlock = 64 * 1024;
    return o;
}

TEST(Trace, EngineTracingChangesNoResultOrStats)
{
    Prng prng(0x7A);
    const auto points = msm::generatePoints<Bn254>(96, prng);
    const auto scalars = msm::generateScalars<Bn254>(96, prng);
    const Cluster cluster(DeviceSpec::a100(), 4);

    const msm::MsmEngine<Bn254> plain(points, cluster,
                                      engineOptions());
    const auto baseline = plain.compute(scalars);

    TraceRecorder trace;
    auto traced_options = engineOptions();
    traced_options.trace = &trace;
    const msm::MsmEngine<Bn254> traced(points, cluster,
                                       traced_options);
    const auto traced_result = traced.compute(scalars);

    EXPECT_EQ(traced_result.value, baseline.value);
    EXPECT_EQ(traced_result.stats, baseline.stats);
    EXPECT_EQ(traced_result.hostOps, baseline.hostOps);
    EXPECT_GT(trace.eventCount(), 0u);
    EXPECT_FALSE(trace.metrics().empty());
    // The kernel-launch lane carries one scatter span per window.
    std::size_t launch_spans = 0;
    for (const auto &e : trace.snapshot())
        launch_spans += e.pid == lane::kKernelsPid && e.ph == 'X';
    EXPECT_EQ(launch_spans, traced_result.plan.numWindows);
}

TEST(Trace, EngineExportIsByteIdenticalAcrossHostThreads)
{
    Prng prng(0x7B);
    const auto points = msm::generatePoints<Bn254>(128, prng);
    const auto scalars = msm::generateScalars<Bn254>(128, prng);
    const Cluster cluster(DeviceSpec::a100(), 4);

    std::string reference_trace, reference_metrics;
    for (const int threads : {1, 2, 8}) {
        TraceRecorder trace;
        auto options = engineOptions();
        options.signedDigits = true;
        options.hostThreads = threads;
        options.trace = &trace;
        const msm::MsmEngine<Bn254> engine(points, cluster, options);
        (void)engine.compute(scalars);

        std::ostringstream trace_os, metrics_os;
        trace.writeChromeJson(trace_os);
        trace.writeMetricsJson(metrics_os);
        if (threads == 1) {
            reference_trace = trace_os.str();
            reference_metrics = metrics_os.str();
            EXPECT_GT(reference_trace.size(), 2u);
        } else {
            EXPECT_EQ(trace_os.str(), reference_trace)
                << "trace drifted at hostThreads=" << threads;
            EXPECT_EQ(metrics_os.str(), reference_metrics)
                << "metrics drifted at hostThreads=" << threads;
        }
    }
}

TEST(Trace, PipelineEstimateUnchangedByTracing)
{
    const auto curve = gpusim::CurveProfile::bn254();
    const Cluster cluster(DeviceSpec::a100(), 8);
    msm::MsmOptions options;
    options.windowBitsOverride = 11;
    const auto plain = msm::estimateProvingPipeline(
        curve, 1ull << 22, cluster, options, 4);
    TraceRecorder trace;
    options.trace = &trace;
    const auto traced = msm::estimateProvingPipeline(
        curve, 1ull << 22, cluster, options, 4);
    EXPECT_DOUBLE_EQ(traced.pipelinedNs, plain.pipelinedNs);
    EXPECT_DOUBLE_EQ(traced.serialNs, plain.serialNs);
}

} // namespace
} // namespace distmsm
