/**
 * @file
 * Selectable field-arithmetic backend tests.
 *
 * The contract: FieldBackend is a pure attribution/pricing knob —
 * MsmEngine results are bit-identical between CudaCore and
 * TensorCore on every curve, because the tcmul differential path
 * computes the same fully-reduced Montgomery product as CIOS
 * (test_tcmul pins the multiplier itself; these tests pin the
 * dispatch wiring, the planner's Auto resolution and the metrics).
 */

#include <gtest/gtest.h>

#include <vector>

#include "src/ec/curves.h"
#include "src/field/backend.h"
#include "src/msm/distmsm.h"
#include "src/msm/reference.h"
#include "src/msm/workload.h"
#include "src/support/prng.h"
#include "src/support/trace.h"

namespace distmsm::msm {
namespace {

using gpusim::Cluster;
using gpusim::CurveProfile;
using gpusim::DeviceSpec;
using gpusim::EcKernelVariant;
using gpusim::FieldBackend;
using gpusim::Topology;

/** Small scatter geometry so functional runs stay fast. */
MsmOptions
testOptions(unsigned s)
{
    MsmOptions o;
    o.windowBitsOverride = s;
    o.scatter.blockDim = 64;
    o.scatter.gridDim = 4;
    o.scatter.sharedBytesPerBlock = 128 * 1024;
    return o;
}

// --- FieldBackend plumbing (cost_model.h) ---------------------------

TEST(FieldBackendKnob, ParseAndNames)
{
    FieldBackend b = FieldBackend::Auto;
    EXPECT_TRUE(gpusim::parseFieldBackend("cuda-core", &b));
    EXPECT_EQ(b, FieldBackend::CudaCore);
    EXPECT_TRUE(gpusim::parseFieldBackend("tensor-core", &b));
    EXPECT_EQ(b, FieldBackend::TensorCore);
    EXPECT_TRUE(gpusim::parseFieldBackend("tc", &b));
    EXPECT_EQ(b, FieldBackend::TensorCore);
    EXPECT_TRUE(gpusim::parseFieldBackend("auto", &b));
    EXPECT_EQ(b, FieldBackend::Auto);
    EXPECT_FALSE(gpusim::parseFieldBackend("vulkan", &b));
    EXPECT_STREQ(gpusim::fieldBackendName(FieldBackend::CudaCore),
                 "cuda-core");
    EXPECT_STREQ(gpusim::fieldBackendName(FieldBackend::TensorCore),
                 "tensor-core");
    EXPECT_STREQ(gpusim::fieldBackendName(FieldBackend::Auto),
                 "auto");
}

TEST(FieldBackendKnob, ApplyFieldBackendSemantics)
{
    // CudaCore strips the TC flags from any variant.
    EcKernelVariant cc = gpusim::applyFieldBackend(
        EcKernelVariant::full(), FieldBackend::CudaCore);
    EXPECT_FALSE(cc.tensorCoreMont);
    EXPECT_FALSE(cc.onTheFlyCompact);
    EXPECT_TRUE(cc.dedicatedPacc); // non-field flags untouched

    // TensorCore on an already-TC variant is the identity — the
    // conventional-compaction ablation row must keep its pricing.
    EcKernelVariant tc_plain = EcKernelVariant::full();
    tc_plain.onTheFlyCompact = false;
    const EcKernelVariant kept = gpusim::applyFieldBackend(
        tc_plain, FieldBackend::TensorCore);
    EXPECT_TRUE(kept.tensorCoreMont);
    EXPECT_FALSE(kept.onTheFlyCompact);

    // Upgrading a non-TC variant turns on the full TC path.
    const EcKernelVariant up = gpusim::applyFieldBackend(
        EcKernelVariant::baseline(), FieldBackend::TensorCore);
    EXPECT_TRUE(up.tensorCoreMont);
    EXPECT_TRUE(up.onTheFlyCompact);

    // Auto changes nothing at this layer.
    const EcKernelVariant same = gpusim::applyFieldBackend(
        tc_plain, FieldBackend::Auto);
    EXPECT_EQ(same.tensorCoreMont, tc_plain.tensorCoreMont);
    EXPECT_EQ(same.onTheFlyCompact, tc_plain.onTheFlyCompact);
}

// --- Fp dispatch differential ---------------------------------------

template <typename Fq>
void
fieldDifferential(std::uint64_t seed)
{
    using Base = typename Fq::Base;
    Prng prng(seed);

    Base pm1 = Fq::modulus();
    pm1.subInPlace(Base::fromU64(1));
    std::vector<Fq> edge = {
        Fq::zero(), Fq::one(), Fq::fromRaw(pm1),
        // Largest legal Montgomery representation (the reduction
        // boundary): the representation p-1 rather than the value.
        Fq::fromMontgomery(pm1),
    };
    std::vector<Fq> elems = edge;
    for (int i = 0; i < 16; ++i)
        elems.push_back(Fq::random(prng));

    for (const Fq &a : elems) {
        for (const Fq &b : elems) {
            const Fq want_mul = a * b;     // CIOS (no scope)
            const Fq want_sqr = a.sqr();   // CIOS / dedicated square
            ec::opCounters().reset();
            {
                const field::TcBackendScope scope(true);
                EXPECT_TRUE(field::tcBackendActive());
                EXPECT_EQ(a * b, want_mul);
                EXPECT_EQ(a.sqr(), want_sqr);
            }
            EXPECT_FALSE(field::tcBackendActive());
            // One tcMul per executed product: the mul and the sqr.
            EXPECT_EQ(ec::opCounters().tcMul, 2u);
            // Outside the scope nothing routes through tcmul.
            EXPECT_EQ(a * b, want_mul);
            EXPECT_EQ(ec::opCounters().tcMul, 2u);
        }
    }
}

TEST(TcFieldDispatch, Bn254MatchesCios) { fieldDifferential<Bn254Fq>(0xB1); }
TEST(TcFieldDispatch, Bls381MatchesCios) { fieldDifferential<Bls381Fq>(0xB2); }

TEST(TcFieldDispatch, ScopeNests)
{
    const field::TcBackendScope outer(true);
    EXPECT_TRUE(field::tcBackendActive());
    {
        const field::TcBackendScope inner(false);
        EXPECT_FALSE(field::tcBackendActive());
    }
    EXPECT_TRUE(field::tcBackendActive());
}

// --- Planner Auto resolution ----------------------------------------

TEST(FieldBackendPlanner, AutoPicksTcOnSmallFieldsCudaOnMnt)
{
    const Cluster cluster(DeviceSpec::a100(), Topology::flat(4));
    const MsmOptions options = testOptions(8);

    for (const CurveProfile &curve :
         {CurveProfile::bn254(), CurveProfile::bls377(),
          CurveProfile::bls381()}) {
        const MsmPlan plan =
            planMsm(curve, 1u << 16, cluster, options);
        EXPECT_TRUE(plan.fieldBackendAuto) << curve.name;
        EXPECT_EQ(plan.fieldBackend, FieldBackend::TensorCore)
            << curve.name;
    }

    // MNT4753's 12-limb digit matrices blow past the fragment size;
    // compaction zero-lanes make the tensor path the slower one
    // (paper Section 5.3.3), so Auto keeps CUDA cores.
    const MsmPlan mnt = planMsm(CurveProfile::mnt4753(), 1u << 16,
                                cluster, options);
    EXPECT_TRUE(mnt.fieldBackendAuto);
    EXPECT_EQ(mnt.fieldBackend, FieldBackend::CudaCore);
}

TEST(FieldBackendPlanner, BaselineKernelResolvesToCudaCore)
{
    const Cluster cluster(DeviceSpec::a100(), Topology::flat(4));
    MsmOptions options = testOptions(8);
    options.kernel = EcKernelVariant::baseline();
    const MsmPlan plan = planMsm(CurveProfile::bn254(), 1u << 16,
                                 cluster, options);
    EXPECT_TRUE(plan.fieldBackendAuto);
    EXPECT_EQ(plan.fieldBackend, FieldBackend::CudaCore);
}

TEST(FieldBackendPlanner, ForcedBackendIsRespected)
{
    const Cluster cluster(DeviceSpec::a100(), Topology::flat(4));
    MsmOptions options = testOptions(8);
    options.fieldBackend = FieldBackend::CudaCore;
    const MsmPlan cc = planMsm(CurveProfile::bn254(), 1u << 16,
                               cluster, options);
    EXPECT_FALSE(cc.fieldBackendAuto);
    EXPECT_EQ(cc.fieldBackend, FieldBackend::CudaCore);

    options.fieldBackend = FieldBackend::TensorCore;
    const MsmPlan tc = planMsm(CurveProfile::mnt4753(), 1u << 16,
                               cluster, options);
    EXPECT_FALSE(tc.fieldBackendAuto);
    EXPECT_EQ(tc.fieldBackend, FieldBackend::TensorCore);
}

TEST(FieldBackendPlanner, TcBeatsCudaCoreWhereAutoSaysSo)
{
    // The pricing behind the Auto pick, stated directly: on BN254 at
    // paper scales the TC variant's bucket-sum throughput must beat
    // the CUDA-core variant's (the paper's ~8x int32 MACs offload
    // minus marshalling), and the inverse on MNT4753.
    const gpusim::CostModel model(DeviceSpec::a100(),
                                  gpusim::CostParams{});
    const EcKernelVariant tc = gpusim::applyFieldBackend(
        EcKernelVariant::full(), FieldBackend::TensorCore);
    const EcKernelVariant cc = gpusim::applyFieldBackend(
        EcKernelVariant::full(), FieldBackend::CudaCore);
    const std::uint64_t ops = 1u << 20;
    EXPECT_LT(model.ecThroughputNs(CurveProfile::bn254(), tc,
                                   gpusim::EcOp::Pacc, ops),
              model.ecThroughputNs(CurveProfile::bn254(), cc,
                                   gpusim::EcOp::Pacc, ops));
    EXPECT_GT(model.ecThroughputNs(CurveProfile::mnt4753(), tc,
                                   gpusim::EcOp::Pacc, ops),
              model.ecThroughputNs(CurveProfile::mnt4753(), cc,
                                   gpusim::EcOp::Pacc, ops));
}

// --- Engine differential --------------------------------------------

template <typename Curve>
void
engineBackendDifferential(std::size_t n, unsigned s,
                          std::uint64_t seed)
{
    Prng prng(seed);
    const auto points = generatePoints<Curve>(n, prng);
    auto scalars = generateScalars<Curve>(n, prng);
    // Edge scalars ride along: 0, 1 and r-1 exercise the empty
    // bucket, the no-op digit and the all-ones digit paths under
    // both backends.
    using Scalar = BigInt<Curve::Fr::kLimbs>;
    if (n >= 3) {
        scalars[0] = Scalar::zero();
        scalars[1] = Scalar::fromU64(1);
        Scalar rm1 = Curve::Fr::modulus();
        rm1.subInPlace(Scalar::fromU64(1));
        scalars[2] = rm1;
    }
    const Cluster cluster(DeviceSpec::a100(), Topology::flat(4));

    MsmOptions options = testOptions(s);
    options.fieldBackend = FieldBackend::CudaCore;
    const auto cc =
        computeDistMsm<Curve>(points, scalars, cluster, options);

    options.fieldBackend = FieldBackend::TensorCore;
    const auto tc =
        computeDistMsm<Curve>(points, scalars, cluster, options);

    // Bit-identical results and identical measured work.
    EXPECT_EQ(cc.value, tc.value);
    EXPECT_EQ(cc.stats.paccOps, tc.stats.paccOps);
    EXPECT_EQ(cc.stats.paddOps, tc.stats.paddOps);
    EXPECT_EQ(cc.stats.globalAtomics, tc.stats.globalAtomics);

    // And both match the serial reference.
    const auto expect =
        msmSerialPippenger<Curve>(points, scalars, s);
    EXPECT_EQ(cc.value, expect);
}

TEST(TcBackendEngine, Bn254Differential)
{
    engineBackendDifferential<Bn254>(200, 8, 0xE1);
}

TEST(TcBackendEngine, Bls381Differential)
{
    engineBackendDifferential<Bls381>(160, 8, 0xE2);
}

TEST(TcBackendEngine, Bn254FeatureStackedDifferential)
{
    Prng prng(0xE3);
    const std::size_t n = 192;
    const auto points = generatePoints<Bn254>(n, prng);
    const auto scalars = generateScalars<Bn254>(n, prng);
    const Cluster cluster(DeviceSpec::a100(), Topology::flat(4));

    MsmOptions options = testOptions(6);
    options.signedDigits = true;
    options.glv = true;
    options.batchAffine = true;
    options.precompute = true;

    options.fieldBackend = FieldBackend::CudaCore;
    const auto cc =
        computeDistMsm<Bn254>(points, scalars, cluster, options);
    options.fieldBackend = FieldBackend::TensorCore;
    const auto tc =
        computeDistMsm<Bn254>(points, scalars, cluster, options);
    EXPECT_EQ(cc.value, tc.value);
    EXPECT_EQ(cc.value,
              msmSerialPippenger<Bn254>(points, scalars, 8));
}

TEST(TcBackendEngine, TensorCoreDeterministicAcrossHostThreads)
{
    Prng prng(0xE4);
    const std::size_t n = 128;
    const auto points = generatePoints<Bn254>(n, prng);
    const auto scalars = generateScalars<Bn254>(n, prng);
    const Cluster cluster(DeviceSpec::a100(), Topology::flat(4));

    MsmOptions options = testOptions(8);
    options.fieldBackend = FieldBackend::TensorCore;
    options.hostThreads = 1;
    const auto base =
        computeDistMsm<Bn254>(points, scalars, cluster, options);
    for (int threads : {2, 8}) {
        options.hostThreads = threads;
        const auto run =
            computeDistMsm<Bn254>(points, scalars, cluster, options);
        EXPECT_EQ(run.value, base.value) << threads;
        EXPECT_EQ(run.stats.paccOps, base.stats.paccOps) << threads;
        EXPECT_EQ(run.stats.gmemBytes, base.stats.gmemBytes)
            << threads;
    }
}

// --- Metrics / trace attribution ------------------------------------

TEST(TcBackendMetrics, EngineEmitsBackendLanes)
{
    Prng prng(0xE5);
    const std::size_t n = 96;
    const auto points = generatePoints<Bn254>(n, prng);
    const auto scalars = generateScalars<Bn254>(n, prng);
    const Cluster cluster(DeviceSpec::a100(), Topology::flat(4));

    {
        support::TraceRecorder trace;
        MsmOptions options = testOptions(8);
        options.trace = &trace;
        options.fieldBackend = FieldBackend::TensorCore;
        computeDistMsm<Bn254>(points, scalars, cluster, options);
        const auto &m = trace.metrics();
        EXPECT_EQ(m.value("engine/field_backend"),
                  double(int(FieldBackend::TensorCore)));
        EXPECT_EQ(m.value("engine/field_backend_auto"), 0.0);
        EXPECT_EQ(m.value("engine/field_backend_tc_executed"), 1.0);
        EXPECT_GT(m.value("engine/field_backend_tc_modmuls"), 0.0);
    }
    {
        support::TraceRecorder trace;
        MsmOptions options = testOptions(8);
        options.trace = &trace;
        options.fieldBackend = FieldBackend::CudaCore;
        computeDistMsm<Bn254>(points, scalars, cluster, options);
        const auto &m = trace.metrics();
        EXPECT_EQ(m.value("engine/field_backend"),
                  double(int(FieldBackend::CudaCore)));
        EXPECT_EQ(m.value("engine/field_backend_tc_executed"), 0.0);
        EXPECT_GT(m.value("engine/field_backend_cuda_modmuls"), 0.0);
    }
}

TEST(TcBackendMetrics, TimelineRecordsResolvedBackend)
{
    const Cluster cluster(DeviceSpec::a100(), Topology::flat(8));
    support::TraceRecorder trace;
    MsmOptions options;
    options.trace = &trace;
    const auto t = estimateDistMsm(CurveProfile::bn254(), 1u << 20,
                                   cluster, options);
    EXPECT_EQ(t.fieldBackend, FieldBackend::TensorCore);
    EXPECT_EQ(trace.metrics().value("timeline/field_backend"),
              double(int(FieldBackend::TensorCore)));
    EXPECT_EQ(trace.metrics().value("timeline/field_backend_auto"),
              1.0);
}

TEST(TcBackendTimeline, AutoNeverLosesToEitherForcedBackend)
{
    // The planner's pick must be at least as good as both forced
    // backends under the timeline model — on every curve and at
    // several scales (this is the point of the knob).
    const Cluster cluster(DeviceSpec::a100(), Topology::flat(8));
    for (const CurveProfile &curve :
         {CurveProfile::bn254(), CurveProfile::bls381(),
          CurveProfile::mnt4753()}) {
        for (unsigned logn : {16u, 20u, 24u}) {
            MsmOptions options;
            const auto auto_t = estimateDistMsm(
                curve, 1ull << logn, cluster, options);
            options.fieldBackend = FieldBackend::CudaCore;
            const auto cc_t = estimateDistMsm(
                curve, 1ull << logn, cluster, options);
            options.fieldBackend = FieldBackend::TensorCore;
            const auto tc_t = estimateDistMsm(
                curve, 1ull << logn, cluster, options);
            EXPECT_LE(auto_t.totalNs(),
                      std::min(cc_t.totalNs(), tc_t.totalNs()) *
                          (1.0 + 1e-12))
                << curve.name << " 2^" << logn;
        }
    }
}

} // namespace
} // namespace distmsm::msm
