/**
 * @file
 * Tests for the tensor-core Montgomery model (paper Section 4.3):
 * digit decomposition, the constant matrix product, the 23-bit lane
 * bound, fragment ownership after the matB column shuffle, on-the-fly
 * compaction, and end-to-end Montgomery equivalence on all fields.
 */

#include <gtest/gtest.h>

#include <set>

#include "src/field/field_params.h"
#include "src/support/prng.h"
#include "src/tcmul/compaction.h"
#include "src/tcmul/digit_matrix.h"
#include "src/tcmul/fragment.h"
#include "src/tcmul/mont_tc.h"

namespace distmsm::tcmul {
namespace {

TEST(Digits, RoundTrip)
{
    Prng prng(0xD161);
    for (int i = 0; i < 30; ++i) {
        const auto v = BigInt<6>::random(prng);
        EXPECT_EQ(fromDigits<6>(toDigits(v)), v);
    }
}

TEST(Digits, LittleEndianOrder)
{
    const auto v = BigInt<4>::fromU64(0x0403020100u * 256 + 0xAB);
    const auto d = toDigits(v);
    EXPECT_EQ(d[0], 0xAB);
    EXPECT_EQ(d[1], 0x00);
    EXPECT_EQ(d[2], 0x01);
}

TEST(ConstantMatrixTest, EncodesShiftedDigits)
{
    // n = 0x0201 -> digits {1, 2}; column i of row j holds n_(i-j).
    const std::vector<std::uint8_t> n = {1, 2};
    const ConstantMatrix b(n, 3);
    EXPECT_EQ(b.rows(), 3u);
    EXPECT_EQ(b.cols(), 5u);
    EXPECT_EQ(b.entry(0, 0), 1);
    EXPECT_EQ(b.entry(0, 1), 2);
    EXPECT_EQ(b.entry(1, 1), 1);
    EXPECT_EQ(b.entry(1, 2), 2);
    EXPECT_EQ(b.entry(2, 2), 1);
    EXPECT_EQ(b.entry(0, 2), 0);
    EXPECT_EQ(b.entry(2, 0), 0);
}

TEST(ColumnSums, SmallProductExact)
{
    // x = 0x0105, n = 0x0203: column sums reassemble to x * n.
    const std::vector<std::uint8_t> x = {5, 1};
    const std::vector<std::uint8_t> n = {3, 2};
    const ConstantMatrix b(n, x.size());
    const auto sums = columnSums(x, b);
    const auto wide = accumulateColumns<2>(sums);
    EXPECT_TRUE(wide.isU64(0x0105u * 0x0203u));
}

TEST(ColumnSums, MatchesMulFullOnRandomInputs)
{
    Prng prng(0x7C01);
    for (int iter = 0; iter < 20; ++iter) {
        const auto x = BigInt<6>::random(prng);
        const auto n = BigInt<6>::random(prng);
        const ConstantMatrix b(toDigits(n), 48);
        const auto sums = columnSums(toDigits(x), b);
        const auto got = accumulateColumns<13>(sums);
        const auto want = mulFull(x, n);
        for (std::size_t i = 0; i < want.size(); ++i)
            EXPECT_EQ(got.limb[i], want[i]);
        EXPECT_EQ(got.limb[12], 0u);
    }
}

TEST(ColumnSums, LaneBitBoundMatchesPaper)
{
    // "up to ceil(753/8) = 95 such uint16 values are accumulated,
    // giving a result with no more than 23 significant bits."
    EXPECT_EQ(columnSumBits(95), 23u);
    // And the worst case is actually attained by all-0xff operands.
    const std::vector<std::uint8_t> x(95, 0xFF), n(95, 0xFF);
    const ConstantMatrix b(n, x.size());
    const auto sums = columnSums(x, b);
    std::uint32_t max_sum = 0;
    for (auto s : sums)
        max_sum = std::max(max_sum, s);
    EXPECT_LT(max_sum, 1u << 23);
    EXPECT_GE(max_sum, 1u << 22);
}

TEST(Compaction, GroupsOfFourWithStagger)
{
    const std::vector<std::uint32_t> sums = {1, 2, 3, 4, 5};
    const auto groups = compactColumns(sums);
    ASSERT_EQ(groups.size(), 2u);
    EXPECT_EQ(groups[0],
              1u + (2ull << 8) + (3ull << 16) + (4ull << 24));
    EXPECT_EQ(groups[1], 5u);
}

TEST(Compaction, FortyFiveBitBoundFor256BitOperands)
{
    // Figure 7's example: 256-bit products (32 rows) compact into
    // 45-bit integers.
    EXPECT_LE(compactedBits(32), 46u);
    EXPECT_GE(compactedBits(32), 45u);
}

TEST(Compaction, ResolvesToExactProduct)
{
    Prng prng(0xC0FAC7);
    for (int iter = 0; iter < 20; ++iter) {
        const auto x = BigInt<4>::random(prng);
        const auto n = BigInt<4>::random(prng);
        const ConstantMatrix b(toDigits(n), 32);
        const auto sums = columnSums(toDigits(x), b);
        const auto direct = accumulateColumns<9>(sums);
        const auto resolved =
            resolveCompacted<9>(compactColumns(sums));
        EXPECT_EQ(resolved, direct);
    }
}

TEST(Compaction, TrafficSavingIsFourX)
{
    // "it incurs a memory transfer overhead that is 4x the optimal."
    EXPECT_EQ(rawTrafficBytes(64), 4 * compactedTrafficBytes(64));
}

TEST(Fragment, OwnershipMatchesMmaLayout)
{
    // Figure 7b: thread0 holds C0, C1; thread1 holds C2, C3; row r
    // is owned by threads 4r .. 4r+3.
    EXPECT_EQ(owningThread(0, 0), 0);
    EXPECT_EQ(owningThread(0, 1), 0);
    EXPECT_EQ(owningThread(0, 2), 1);
    EXPECT_EQ(owningThread(0, 7), 3);
    EXPECT_EQ(owningThread(1, 0), 4);
    EXPECT_EQ(owningThread(7, 6), 31);
    // Slots repeat per 8-column tile.
    EXPECT_EQ(owningThread(0, 8), 0);
    EXPECT_EQ(owningThread(0, 9), 0);
}

TEST(Fragment, PaperExampleSwapPairs)
{
    // "by swapping columns {2, 3, 18, 19} with {8, 9, 24, 25},
    // C_i0 ~ C_i3 and C_iG ~ C_iJ are all allocated to thread0."
    const auto perm = compactionPermutation(32);
    EXPECT_EQ(perm[8], 2);
    EXPECT_EQ(perm[9], 3);
    EXPECT_EQ(perm[2], 8);
    EXPECT_EQ(perm[3], 9);
    EXPECT_EQ(perm[24], 18);
    EXPECT_EQ(perm[25], 19);
    EXPECT_EQ(perm[18], 24);
    EXPECT_EQ(perm[19], 25);
}

TEST(Fragment, EveryThreadOwnsConsecutiveRunsOfFour)
{
    for (int cols : {16, 32, 64, 96, 192}) {
        const auto perm = compactionPermutation(cols);
        for (int row = 0; row < kTileRows; ++row) {
            const auto owned = ownedColumns(row, cols, perm);
            for (const auto &cols_of_thread : owned) {
                ASSERT_EQ(cols_of_thread.size() % 4, 0u);
                for (std::size_t g = 0; g + 4 <= cols_of_thread.size();
                     g += 4) {
                    for (int k = 1; k < 4; ++k) {
                        EXPECT_EQ(cols_of_thread[g + k],
                                  cols_of_thread[g] + k)
                            << "cols=" << cols << " row=" << row;
                    }
                }
            }
        }
    }
}

TEST(Fragment, WithoutPermutationRunsAreOnlyTwoWide)
{
    // The motivation for the shuffle: identity layout leaves each
    // thread with scattered pairs.
    std::vector<int> identity(32);
    for (int i = 0; i < 32; ++i)
        identity[i] = i;
    const auto owned = ownedColumns(0, 32, identity);
    // Thread 0 holds {0, 1, 8, 9, 16, 17, 24, 25}: no run of 4.
    ASSERT_EQ(owned[0].size(), 8u);
    EXPECT_EQ(owned[0][1], owned[0][0] + 1);
    EXPECT_NE(owned[0][2], owned[0][1] + 1);
}

TEST(Fragment, PermutationIsAPermutation)
{
    const auto perm = compactionPermutation(96);
    std::set<int> seen(perm.begin(), perm.end());
    EXPECT_EQ(seen.size(), perm.size());
    EXPECT_EQ(*seen.begin(), 0);
    EXPECT_EQ(*seen.rbegin(), 95);
}

template <typename P>
class MontTcTest : public ::testing::Test
{
  protected:
    static constexpr std::size_t N = P::kLimbs;
    using B = BigInt<N>;

    B mod_ = B::fromLimbs(P::kModulus);
    TcMontgomeryContext<N> ctx_{mod_, P::kInv64};
    Prng prng_{0x7C};
};

using AllFieldParams =
    ::testing::Types<Bn254FqParams, Bn254FrParams, Bls377FqParams,
                     Bls377FrParams, Bls381FqParams, Bls381FrParams,
                     Mnt4753FqParams, Mnt4753FrParams>;
TYPED_TEST_SUITE(MontTcTest, AllFieldParams);

TYPED_TEST(MontTcTest, MatchesCiosExactly)
{
    using B = BigInt<TypeParam::kLimbs>;
    for (int iter = 0; iter < 15; ++iter) {
        const B a = B::randomBelow(this->prng_, this->mod_);
        const B b = B::randomBelow(this->prng_, this->mod_);
        EXPECT_EQ(montMulTC(a, b, this->ctx_),
                  montMulCIOS(a, b, this->mod_, TypeParam::kInv64));
    }
}

TYPED_TEST(MontTcTest, EdgeOperands)
{
    using B = BigInt<TypeParam::kLimbs>;
    B pm1 = this->mod_;
    pm1.subInPlace(B::fromU64(1));
    for (const B &a : {B::zero(), B::fromU64(1), pm1}) {
        for (const B &b : {B::zero(), B::fromU64(1), pm1}) {
            EXPECT_EQ(montMulTC(a, b, this->ctx_),
                      montMulCIOS(a, b, this->mod_,
                                  TypeParam::kInv64));
        }
    }
}

TYPED_TEST(MontTcTest, WideProductIsExact)
{
    using B = BigInt<TypeParam::kLimbs>;
    const B m = B::randomBelow(this->prng_, this->mod_);
    const auto got = this->ctx_.wideProduct(m);
    const auto want = mulFull(m, this->mod_);
    for (std::size_t i = 0; i < want.size(); ++i)
        EXPECT_EQ(got[i], want[i]);
}

} // namespace
} // namespace distmsm::tcmul
