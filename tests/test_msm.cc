/**
 * @file
 * End-to-end MSM tests: reference implementations, workload
 * generation, the functional DistMSM execution across cluster
 * shapes, the planner and the baseline models.
 */

#include <gtest/gtest.h>

#include "src/ec/curves.h"
#include "src/msm/baseline_profiles.h"
#include "src/msm/distmsm.h"
#include "src/msm/reference.h"
#include "src/msm/workload.h"
#include "src/support/prng.h"

namespace distmsm::msm {
namespace {

using gpusim::Cluster;
using gpusim::CurveProfile;
using gpusim::DeviceSpec;

template <typename Curve>
struct Workload
{
    std::vector<AffinePoint<Curve>> points;
    std::vector<BigInt<Curve::Fr::kLimbs>> scalars;
};

template <typename Curve>
Workload<Curve>
makeWorkload(std::size_t n, std::uint64_t seed)
{
    Prng prng(seed);
    Workload<Curve> w;
    w.points = generatePoints<Curve>(n, prng);
    w.scalars = generateScalars<Curve>(n, prng);
    return w;
}

/** Small scatter geometry so functional runs stay fast. */
MsmOptions
testOptions(unsigned s)
{
    MsmOptions o;
    o.windowBitsOverride = s;
    o.scatter.blockDim = 64;
    o.scatter.gridDim = 4;
    o.scatter.sharedBytesPerBlock = 128 * 1024;
    return o;
}

TEST(WorkloadGen, PointsAreOnCurveAndDistinct)
{
    Prng prng(0x90A7);
    const auto points = generatePoints<Bn254>(64, prng);
    ASSERT_EQ(points.size(), 64u);
    for (std::size_t i = 0; i < points.size(); ++i) {
        EXPECT_TRUE(points[i].isOnCurve());
        EXPECT_FALSE(points[i].infinity);
        for (std::size_t j = i + 1; j < points.size(); ++j)
            EXPECT_FALSE(points[i] == points[j]);
    }
}

TEST(WorkloadGen, ScalarsRespectWidth)
{
    Prng prng(0x90A8);
    const auto scalars = generateScalars<Bls377>(100, prng);
    for (const auto &k : scalars)
        EXPECT_LE(k.bitLength(), 253u);
}

TEST(ReferenceMsm, HandCases)
{
    using Xyzz = XYZZPoint<Bn254>;
    const auto g = Bn254::generator();
    const Xyzz gx = Xyzz::fromAffine(g);

    // 1 * G = G
    EXPECT_EQ(msmNaive<Bn254>({g}, std::vector<BigInt<4>>{
                                       BigInt<4>::fromU64(1)}),
              gx);
    // 0 * G = O
    EXPECT_TRUE(msmNaive<Bn254>({g}, std::vector<BigInt<4>>{
                                         BigInt<4>::zero()})
                    .isIdentity());
    // 2G + 3G = 5G
    const auto two_g = pdbl(gx).toAffine();
    const std::vector<AffinePoint<Bn254>> pts = {g, two_g};
    const std::vector<BigInt<4>> ks = {BigInt<4>::fromU64(2),
                                       BigInt<4>::fromU64(3)};
    EXPECT_EQ(msmNaive<Bn254>(pts, ks),
              pmul(gx, BigInt<4>::fromU64(8)));
}

template <typename C>
class MsmCurveTest : public ::testing::Test
{
};

using MsmCurves = ::testing::Types<Bn254, Bls377, Bls381, Mnt4753>;
TYPED_TEST_SUITE(MsmCurveTest, MsmCurves);

TYPED_TEST(MsmCurveTest, SerialPippengerMatchesNaive)
{
    const auto w = makeWorkload<TypeParam>(40, 0xAB);
    const auto naive = msmNaive<TypeParam>(w.points, w.scalars);
    for (unsigned s : {3u, 8u, 13u}) {
        EXPECT_EQ(msmSerialPippenger<TypeParam>(w.points, w.scalars,
                                                s),
                  naive)
            << "s=" << s;
    }
}

TYPED_TEST(MsmCurveTest, DistMsmMatchesNaive)
{
    const auto w = makeWorkload<TypeParam>(50, 0xAC);
    const Cluster cluster(DeviceSpec::a100(), 8);
    const auto result = computeDistMsm<TypeParam>(
        w.points, w.scalars, cluster, testOptions(8));
    EXPECT_EQ(result.value, msmNaive<TypeParam>(w.points, w.scalars));
}

TEST(DistMsm, MatchesAcrossClusterShapes)
{
    const auto w = makeWorkload<Bn254>(300, 0xAD);
    const auto expect = msmNaive<Bn254>(w.points, w.scalars);
    for (int gpus : {1, 4, 16, 32, 64}) {
        const Cluster cluster(DeviceSpec::a100(), gpus);
        const auto result = computeDistMsm<Bn254>(
            w.points, w.scalars, cluster, testOptions(7));
        EXPECT_EQ(result.value, expect) << gpus << " GPUs";
    }
}

TEST(DistMsm, MatchesWithNaiveScatterAndGpuReduce)
{
    const auto w = makeWorkload<Bls381>(120, 0xAE);
    const auto expect = msmNaive<Bls381>(w.points, w.scalars);
    MsmOptions options = testOptions(6);
    options.hierarchicalScatter = false;
    options.cpuBucketReduce = false;
    const Cluster cluster(DeviceSpec::a100(), 4);
    const auto result =
        computeDistMsm<Bls381>(w.points, w.scalars, cluster, options);
    EXPECT_EQ(result.value, expect);
}

TEST(DistMsm, MatchesAcrossWindowSizes)
{
    const auto w = makeWorkload<Bn254>(150, 0xAF);
    const auto expect = msmNaive<Bn254>(w.points, w.scalars);
    for (unsigned s : {2u, 5u, 9u, 12u}) {
        const Cluster cluster(DeviceSpec::a100(), 8);
        const auto result = computeDistMsm<Bn254>(
            w.points, w.scalars, cluster, testOptions(s));
        EXPECT_EQ(result.value, expect) << "s=" << s;
    }
}

TEST(DistMsm, HandlesDegenerateInputs)
{
    const Cluster cluster(DeviceSpec::a100(), 2);
    // All-zero scalars.
    auto w = makeWorkload<Bn254>(32, 0xB0);
    for (auto &k : w.scalars)
        k = BigInt<4>::zero();
    EXPECT_TRUE(computeDistMsm<Bn254>(w.points, w.scalars, cluster,
                                      testOptions(6))
                    .value.isIdentity());
    // Repeated identical points (forces pdbl paths in buckets).
    auto w2 = makeWorkload<Bn254>(4, 0xB1);
    std::vector<AffinePoint<Bn254>> same(
        16, Bn254::generator());
    std::vector<BigInt<4>> ones(16, BigInt<4>::fromU64(3));
    const auto result = computeDistMsm<Bn254>(same, ones, cluster,
                                              testOptions(6));
    EXPECT_EQ(result.value,
              pmul(XYZZPoint<Bn254>::fromAffine(Bn254::generator()),
                   BigInt<4>::fromU64(48)));
}

TEST(DistMsm, StatsAreAccumulated)
{
    const auto w = makeWorkload<Bn254>(200, 0xB2);
    const Cluster cluster(DeviceSpec::a100(), 8);
    const auto result = computeDistMsm<Bn254>(w.points, w.scalars,
                                              cluster, testOptions(7));
    EXPECT_GT(result.stats.paccOps, 0u);
    EXPECT_GT(result.stats.sharedAtomics, 0u);
    EXPECT_GT(result.hostOps, 0u);
    // Every non-zero scalar chunk costs one PACC.
    std::uint64_t nonzero_chunks = 0;
    const unsigned s = result.plan.windowBits;
    for (const auto &k : w.scalars) {
        for (unsigned win = 0; win < result.plan.numWindows; ++win)
            nonzero_chunks += k.bits(win * s, s) != 0;
    }
    EXPECT_EQ(result.stats.paccOps, nonzero_chunks);
}

TEST(Planner, SplitsBucketsWhenGpusExceedWindows)
{
    const CurveProfile curve = CurveProfile::bls377();
    const Cluster cluster(DeviceSpec::a100(), 32);
    MsmOptions options;
    options.windowBitsOverride = 16; // 16 windows < 32 GPUs
    const MsmPlan plan =
        planMsm(curve, 1ull << 26, cluster, options);
    EXPECT_TRUE(plan.bucketsSplitAcrossGpus);
    EXPECT_EQ(plan.gpusPerWindow, 2);
    EXPECT_EQ(plan.windowsPerGpu, 1u);
}

TEST(Planner, WholeWindowsOnSmallClusters)
{
    const CurveProfile curve = CurveProfile::bls377();
    const Cluster cluster(DeviceSpec::a100(), 8);
    MsmOptions options;
    options.windowBitsOverride = 16;
    const MsmPlan plan =
        planMsm(curve, 1ull << 26, cluster, options);
    EXPECT_FALSE(plan.bucketsSplitAcrossGpus);
    EXPECT_EQ(plan.windowsPerGpu, 2u);
    // Paper's small-window multi-GPU regime: many threads per
    // bucket, warp multiples.
    options.windowBitsOverride = 11;
    const MsmPlan small =
        planMsm(curve, 1ull << 26, cluster, options);
    EXPECT_GE(small.threadsPerBucket, 32);
    EXPECT_EQ(small.threadsPerBucket % 32, 0);
}

TEST(Planner, EstimatesScaleDown)
{
    // More GPUs => shorter simulated MSM (DistMSM's design goal).
    const CurveProfile curve = CurveProfile::bls381();
    MsmOptions options;
    double prev = 1e100;
    for (int gpus : {1, 8, 16, 32}) {
        const Cluster cluster(DeviceSpec::a100(), gpus);
        const auto t =
            estimateDistMsm(curve, 1ull << 26, cluster, options);
        EXPECT_LT(t.totalNs(), prev) << gpus;
        prev = t.totalNs();
    }
}

TEST(Planner, EstimatesGrowWithN)
{
    const CurveProfile curve = CurveProfile::bn254();
    const Cluster cluster(DeviceSpec::a100(), 8);
    MsmOptions options;
    double prev = 0;
    for (unsigned logn : {22u, 24u, 26u, 28u}) {
        const auto t = estimateDistMsm(curve, 1ull << logn, cluster,
                                       options);
        EXPECT_GT(t.totalNs(), prev);
        prev = t.totalNs();
    }
}

TEST(Baselines, TableTwoCurveSupport)
{
    const auto &baselines = allBaselines();
    ASSERT_EQ(baselines.size(), 6u);
    auto find = [&](const char *name) -> const BaselineProfile & {
        for (const auto &b : baselines) {
            if (std::string(b.name) == name)
                return b;
        }
        ADD_FAILURE() << name;
        return baselines.front();
    };
    EXPECT_TRUE(find("Bellperson").supports(CurveProfile::bls381()));
    EXPECT_FALSE(find("Bellperson").supports(CurveProfile::bn254()));
    EXPECT_TRUE(find("cuZK").supports(CurveProfile::mnt4753()));
    EXPECT_TRUE(find("Yrrid").supports(CurveProfile::bls377()));
    EXPECT_FALSE(find("Yrrid").supports(CurveProfile::bls381()));
    EXPECT_TRUE(find("Mina").supports(CurveProfile::mnt4753()));
    EXPECT_FALSE(find("Sppark").supports(CurveProfile::mnt4753()));
}

TEST(Baselines, YrridWinsSingleGpuBls377)
{
    // Table 3: DistMSM "lags behind Yrrid for BLS12-377 when using
    // only one GPU".
    const CurveProfile curve = CurveProfile::bls377();
    const Cluster one(DeviceSpec::a100(), 1);
    const auto best = bestBaseline(curve, 1ull << 24, one);
    EXPECT_STREQ(best.profile->name, "Yrrid");
    const auto dist = estimateDistMsm(curve, 1ull << 24, one, {});
    EXPECT_GT(dist.totalNs(), best.timeline.totalNs());
}

TEST(Baselines, DistMsmOvertakesWithManyGpus)
{
    // The headline shape: DistMSM beats the best baseline at scale,
    // on every curve.
    for (const auto &curve :
         {CurveProfile::bn254(), CurveProfile::bls377(),
          CurveProfile::bls381(), CurveProfile::mnt4753()}) {
        const Cluster many(DeviceSpec::a100(), 32);
        const auto best = bestBaseline(curve, 1ull << 26, many);
        const auto dist =
            estimateDistMsm(curve, 1ull << 26, many, {});
        EXPECT_LT(dist.totalNs(), best.timeline.totalNs())
            << curve.name;
    }
}

TEST(Baselines, YrridScalesWorstOnBls377)
{
    // Figure 8: "Yrrid, despite its superior single-GPU performance,
    // scales the least effectively."
    const CurveProfile curve = CurveProfile::bls377();
    const Cluster one(DeviceSpec::a100(), 1);
    const Cluster many(DeviceSpec::a100(), 32);
    double worst_speedup = 1e100;
    const char *worst_name = nullptr;
    for (const auto &b : allBaselines()) {
        if (!b.supports(curve))
            continue;
        const double speedup =
            b.estimate(curve, 1ull << 26, one).totalNs() /
            b.estimate(curve, 1ull << 26, many).totalNs();
        if (speedup < worst_speedup) {
            worst_speedup = speedup;
            worst_name = b.name;
        }
    }
    EXPECT_STREQ(worst_name, "Yrrid");
}

TEST(Baselines, DistMsmScalesNearLinearlyAtLargeN)
{
    // "at the data point where N = 2^28, the performance on 32 GPUs
    // is 31x that of a single GPU."
    const CurveProfile curve = CurveProfile::bls377();
    const Cluster one(DeviceSpec::a100(), 1);
    const Cluster many(DeviceSpec::a100(), 32);
    const double speedup =
        estimateDistMsm(curve, 1ull << 28, one, {}).totalNs() /
        estimateDistMsm(curve, 1ull << 28, many, {}).totalNs();
    EXPECT_GT(speedup, 18.0);
    EXPECT_LE(speedup, 33.0);
}

} // namespace
} // namespace distmsm::msm
