/**
 * @file
 * Tests for batch proof verification: honest batches accept, any
 * single corrupted proof (or public input) poisons the batch, and
 * the degenerate cases behave.
 */

#include <gtest/gtest.h>

#include "src/ec/curves.h"
#include "src/zksnark/batch_verify.h"
#include "src/zksnark/workloads.h"

namespace distmsm::zksnark {
namespace {

using F = Bn254Fr;

class BatchVerifyTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        Prng prng(0xBA7C);
        built_ = buildMulChainCircuit<F>(12, 2, prng);
        const auto trapdoor = Trapdoor<F>::random(prng);
        keys_ = setup<Bn254>(built_.r1cs, trapdoor);
        for (int i = 0; i < 5; ++i) {
            BatchEntry<Bn254> entry;
            entry.proof = prove<Bn254>(keys_.pk, built_.r1cs,
                                       built_.wires, prng);
            entry.publicInputs.assign(
                built_.wires.begin() + 1,
                built_.wires.begin() + 1 +
                    built_.r1cs.numPublic());
            entries_.push_back(std::move(entry));
        }
    }

    BuiltCircuit<F> built_{R1cs<F>(2, 1), {}};
    KeyPair<Bn254> keys_;
    std::vector<BatchEntry<Bn254>> entries_;
};

TEST_F(BatchVerifyTest, HonestBatchAccepts)
{
    Prng rho(0x1);
    EXPECT_TRUE(batchVerify<Bn254>(keys_.vk, entries_, rho));
}

TEST_F(BatchVerifyTest, EmptyBatchAccepts)
{
    Prng rho(0x2);
    EXPECT_TRUE(batchVerify<Bn254>(keys_.vk, {}, rho));
}

TEST_F(BatchVerifyTest, SingleBadScalarPoisonsBatch)
{
    for (std::size_t victim : {0u, 2u, 4u}) {
        auto bad = entries_;
        bad[victim].proof.cScalar += F::one();
        Prng rho(0x3 + victim);
        EXPECT_FALSE(batchVerify<Bn254>(keys_.vk, bad, rho))
            << "victim " << victim;
    }
}

TEST_F(BatchVerifyTest, SingleBadPointPoisonsBatch)
{
    auto bad = entries_;
    bad[1].proof.a = pdbl(bad[1].proof.a);
    Prng rho(0x7);
    EXPECT_FALSE(batchVerify<Bn254>(keys_.vk, bad, rho));
}

TEST_F(BatchVerifyTest, BadPublicInputPoisonsBatch)
{
    auto bad = entries_;
    bad[3].publicInputs[0] += F::one();
    Prng rho(0x8);
    EXPECT_FALSE(batchVerify<Bn254>(keys_.vk, bad, rho));
    // Wrong arity too.
    bad = entries_;
    bad[0].publicInputs.pop_back();
    EXPECT_FALSE(batchVerify<Bn254>(keys_.vk, bad, rho));
}

TEST_F(BatchVerifyTest, TwoErrorsDoNotCancel)
{
    // Opposite-sign corruptions of two proofs must still be caught:
    // the random coefficients make cancellation negligible.
    auto bad = entries_;
    bad[0].proof.cScalar += F::one();
    bad[1].proof.cScalar -= F::one();
    Prng rho(0x9);
    EXPECT_FALSE(batchVerify<Bn254>(keys_.vk, bad, rho));
}

} // namespace
} // namespace distmsm::zksnark
