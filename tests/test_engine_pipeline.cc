/**
 * @file
 * Tests for the reusable MsmEngine, the proving pipeline model
 * (Section 3.2.3's overlapped bucket-reduce), wNAF scalar
 * multiplication and fixed-base window tables.
 */

#include <gtest/gtest.h>

#include "src/ec/curves.h"
#include "src/ec/scalar_mul.h"
#include "src/msm/distmsm.h"
#include "src/msm/pipeline.h"
#include "src/msm/workload.h"
#include "src/support/prng.h"

namespace distmsm {
namespace {

using gpusim::Cluster;
using gpusim::DeviceSpec;

msm::MsmOptions
smallOptions(unsigned s)
{
    msm::MsmOptions o;
    o.windowBitsOverride = s;
    o.scatter.blockDim = 64;
    o.scatter.gridDim = 4;
    o.scatter.sharedBytesPerBlock = 64 * 1024;
    return o;
}

TEST(MsmEngineTest, ReusedAcrossScalarVectors)
{
    Prng prng(0xE6);
    const auto points = msm::generatePoints<Bn254>(100, prng);
    const Cluster cluster(DeviceSpec::a100(), 8);
    const msm::MsmEngine<Bn254> engine(points, cluster,
                                       smallOptions(7));
    for (int round = 0; round < 3; ++round) {
        const auto scalars =
            msm::generateScalars<Bn254>(100, prng);
        const auto result = engine.compute(scalars);
        EXPECT_EQ(result.value,
                  msm::msmNaive<Bn254>(points, scalars))
            << "round " << round;
    }
}

TEST(MsmEngineTest, PrecomputeTableBuiltOnce)
{
    Prng prng(0xE7);
    const auto points = msm::generatePoints<Bn254>(60, prng);
    const Cluster cluster(DeviceSpec::a100(), 4);
    auto options = smallOptions(6);
    options.precompute = true;
    const msm::MsmEngine<Bn254> engine(points, cluster, options);
    // Two computes reuse the same table; both must be right.
    for (int round = 0; round < 2; ++round) {
        const auto scalars = msm::generateScalars<Bn254>(60, prng);
        EXPECT_EQ(engine.compute(scalars).value,
                  msm::msmNaive<Bn254>(points, scalars));
    }
}

TEST(MsmEngineTest, RejectsWrongScalarCount)
{
    Prng prng(0xE8);
    const auto points = msm::generatePoints<Bn254>(16, prng);
    const Cluster cluster(DeviceSpec::a100(), 1);
    const msm::MsmEngine<Bn254> engine(points, cluster,
                                       smallOptions(4));
    const auto scalars = msm::generateScalars<Bn254>(8, prng);
    EXPECT_EXIT(engine.compute(scalars),
                ::testing::ExitedWithCode(1), "mismatch");
}

TEST(Pipeline, MakespanRecurrence)
{
    using msm::PipelineTask;
    // Host stages fully hidden behind GPU stages.
    std::vector<PipelineTask> tasks = {
        {10, 2}, {10, 2}, {10, 2}};
    EXPECT_DOUBLE_EQ(msm::pipelineMakespanNs(tasks), 32.0);
    EXPECT_DOUBLE_EQ(msm::serialMakespanNs(tasks), 36.0);
    // Host-bound pipeline: host becomes the critical path.
    tasks = {{2, 10}, {2, 10}, {2, 10}};
    EXPECT_DOUBLE_EQ(msm::pipelineMakespanNs(tasks), 32.0);
    // Single task: no overlap possible.
    tasks = {{5, 7}};
    EXPECT_DOUBLE_EQ(msm::pipelineMakespanNs(tasks), 12.0);
}

TEST(Pipeline, BoundsHold)
{
    using msm::PipelineTask;
    Prng prng(0x91);
    std::vector<PipelineTask> tasks;
    double gpu_sum = 0, host_sum = 0;
    for (int i = 0; i < 12; ++i) {
        PipelineTask t{1.0 + static_cast<double>(prng.below(100)),
                       1.0 + static_cast<double>(prng.below(100))};
        gpu_sum += t.gpuNs;
        host_sum += t.hostNs;
        tasks.push_back(t);
    }
    const double pipelined = msm::pipelineMakespanNs(tasks);
    EXPECT_GE(pipelined, std::max(gpu_sum, host_sum));
    EXPECT_LE(pipelined, msm::serialMakespanNs(tasks));
}

TEST(Timeline, TransferBelongsToTheGpuStage)
{
    // Section 3.2.3's overlap model: the device-to-host transfer is
    // part of the GPU stage the host reduce hides behind, never a
    // separate serial term (the accounting bug this PR fixes).
    msm::MsmTimeline t;
    t.scatterNs = 100;
    t.bucketSumNs = 200;
    t.transferNs = 50;
    t.bucketReduceNs = 300;
    t.windowReduceNs = 10;
    t.cpuReduce = true;
    t.reduceOverlapped = true;
    EXPECT_DOUBLE_EQ(t.gpuNs(), 300.0);
    EXPECT_DOUBLE_EQ(t.gpuStageNs(), 350.0);
    EXPECT_DOUBLE_EQ(t.hostStageNs(), 310.0);
    // Reduce (300) hides entirely behind the GPU stage (350).
    EXPECT_DOUBLE_EQ(t.totalNs(), 350.0 + 10.0);
    // A longer reduce exposes only its tail past the GPU stage.
    t.bucketReduceNs = 500;
    EXPECT_DOUBLE_EQ(t.totalNs(), 350.0 + 150.0 + 10.0);
    // No overlap: the full reduce serializes.
    t.reduceOverlapped = false;
    EXPECT_DOUBLE_EQ(t.totalNs(), 350.0 + 500.0 + 10.0);
    // GPU-resident reduce joins the GPU stage.
    t.cpuReduce = false;
    EXPECT_DOUBLE_EQ(t.gpuStageNs(), 850.0);
    EXPECT_DOUBLE_EQ(t.totalNs(), 850.0 + 10.0);
}

TEST(Pipeline, OneTaskEqualsTimelineTotal)
{
    // Regression for the reconciled overlap accounting: a pipeline
    // of one MSM must take exactly the standalone timeline's
    // totalNs() with overlapReduce on — previously the pipeline
    // double-charged the hidden reduce and serialized the transfer.
    const auto curve = gpusim::CurveProfile::bn254();
    for (const int gpus : {1, 8}) {
        const Cluster cluster(DeviceSpec::a100(), gpus);
        for (const unsigned s : {11u, 16u}) {
            msm::MsmOptions options;
            options.windowBitsOverride = s;
            options.overlapReduce = true;
            const auto t = msm::estimateDistMsm(curve, 1ull << 22,
                                                cluster, options);
            const auto estimate = msm::estimateProvingPipeline(
                curve, 1ull << 22, cluster, options, 1);
            EXPECT_DOUBLE_EQ(estimate.pipelinedNs, t.totalNs())
                << "gpus=" << gpus << " s=" << s;
            const auto multi = msm::estimateProvingPipeline(
                curve, std::vector<std::uint64_t>{1ull << 22},
                cluster, options);
            EXPECT_DOUBLE_EQ(multi.pipelinedNs, t.totalNs())
                << "heterogeneous overload, gpus=" << gpus;
        }
    }
}

TEST(Pipeline, ScheduleRealizesMakespan)
{
    using msm::PipelineTask;
    const std::vector<PipelineTask> tasks = {
        {10, 4}, {6, 12}, {8, 3}};
    const auto slots = msm::pipelineSchedule(tasks);
    ASSERT_EQ(slots.size(), tasks.size());
    EXPECT_DOUBLE_EQ(slots.back().hostEndNs,
                     msm::pipelineMakespanNs(tasks));
    double gpu_cursor = 0.0;
    double host_done = 0.0;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        EXPECT_DOUBLE_EQ(slots[i].gpuStartNs, gpu_cursor);
        gpu_cursor += tasks[i].gpuNs;
        EXPECT_DOUBLE_EQ(slots[i].gpuEndNs, gpu_cursor);
        // Host slot starts when both dependencies are met.
        EXPECT_DOUBLE_EQ(
            slots[i].hostStartNs,
            std::max(host_done, slots[i].gpuEndNs));
        host_done = slots[i].hostEndNs;
    }
}

TEST(Pipeline, HidesCpuReduceAtScale)
{
    // Section 3.2.3: with several MSMs per proof the CPU reduce is
    // essentially free.
    const auto curve = gpusim::CurveProfile::bn254();
    const Cluster cluster(DeviceSpec::a100(), 8);
    msm::MsmOptions options;
    options.windowBitsOverride = 11; // engage the CPU reduce
    const auto estimate = msm::estimateProvingPipeline(
        curve, 1ull << 24, cluster, options, 4);
    EXPECT_LT(estimate.pipelinedNs, estimate.serialNs);
    EXPECT_GT(estimate.hiddenFraction(), 0.0);
    // The pipelined time approaches the pure GPU time.
    double gpu_only = 0;
    for (const auto &t : estimate.tasks)
        gpu_only += t.gpuNs;
    EXPECT_LT(estimate.pipelinedNs, 1.25 * gpu_only);
}

template <typename C>
class ScalarMulTest : public ::testing::Test
{
  protected:
    using Xyzz = XYZZPoint<C>;
    Prng prng_{0x3CA1A};

    BigInt<C::Fr::kLimbs>
    randScalar()
    {
        auto k = BigInt<C::Fr::kLimbs>::random(prng_);
        k.truncateToBits(C::kScalarBits);
        return k;
    }
};

using ScalarCurves = ::testing::Types<Bn254, Mnt4753>;
TYPED_TEST_SUITE(ScalarMulTest, ScalarCurves);

TYPED_TEST(ScalarMulTest, WnafDigitsAreValid)
{
    for (unsigned w : {2u, 4u, 6u}) {
        const auto k = this->randScalar();
        const auto digits = wnafDigits(k, w);
        const std::int32_t bound = (1 << (w - 1)) - 1;
        int last_nonzero = -static_cast<int>(w);
        for (std::size_t i = 0; i < digits.size(); ++i) {
            if (digits[i] == 0)
                continue;
            EXPECT_EQ(digits[i] % 2 != 0, true) << "digit must be odd";
            EXPECT_LE(digits[i], bound);
            EXPECT_GE(digits[i], -bound);
            EXPECT_GE(static_cast<int>(i) - last_nonzero,
                      static_cast<int>(w))
                << "non-adjacency violated";
            last_nonzero = static_cast<int>(i);
        }
    }
}

TYPED_TEST(ScalarMulTest, WnafMatchesDoubleAndAdd)
{
    using Xyzz = typename ScalarMulTest<TypeParam>::Xyzz;
    const Xyzz g = Xyzz::fromAffine(TypeParam::generator());
    for (unsigned w : {2u, 4u, 5u}) {
        const auto k = this->randScalar();
        EXPECT_EQ(pmulWnaf(g, k, w), pmul(g, k)) << "w=" << w;
    }
    // Edges.
    EXPECT_TRUE(
        pmulWnaf(g, BigInt<4>::zero(), 4).isIdentity());
    EXPECT_EQ(pmulWnaf(g, BigInt<4>::fromU64(1), 4), g);
}

TYPED_TEST(ScalarMulTest, FixedBaseTableMatchesPmul)
{
    using Xyzz = typename ScalarMulTest<TypeParam>::Xyzz;
    const Xyzz g = Xyzz::fromAffine(TypeParam::generator());
    const FixedBaseTable<TypeParam> table(g, TypeParam::kScalarBits,
                                          6);
    for (int i = 0; i < 5; ++i) {
        const auto k = this->randScalar();
        EXPECT_EQ(table.mul(k), pmul(g, k));
    }
    EXPECT_TRUE(table.mul(BigInt<4>::zero()).isIdentity());
    EXPECT_EQ(table.mul(BigInt<4>::fromU64(1)), g);
}

} // namespace
} // namespace distmsm
