/**
 * @file
 * Field-axiom and special-function tests for Fp over all eight fields.
 */

#include <gtest/gtest.h>

#include "src/field/field_params.h"
#include "src/support/prng.h"

namespace distmsm {
namespace {

template <typename P>
class FieldTest : public ::testing::Test
{
  protected:
    using F = Fp<P>;
    Prng prng_{0xF00D};
    F rand() { return F::random(prng_); }
};

using AllFieldParams =
    ::testing::Types<Bn254FqParams, Bn254FrParams, Bls377FqParams,
                     Bls377FrParams, Bls381FqParams, Bls381FrParams,
                     Mnt4753FqParams, Mnt4753FrParams>;
TYPED_TEST_SUITE(FieldTest, AllFieldParams);

TYPED_TEST(FieldTest, ModulusBitsMatchPaperTable1)
{
    // Table 1 of the paper lists the field widths.
    using F = typename FieldTest<TypeParam>::F;
    EXPECT_EQ(F::modulus().bitLength(), TypeParam::kBits);
}

TYPED_TEST(FieldTest, Identities)
{
    using F = typename FieldTest<TypeParam>::F;
    for (int i = 0; i < 20; ++i) {
        const F a = this->rand();
        EXPECT_EQ(a + F::zero(), a);
        EXPECT_EQ(a * F::one(), a);
        EXPECT_EQ(a * F::zero(), F::zero());
        EXPECT_EQ(a - a, F::zero());
        EXPECT_EQ(a + (-a), F::zero());
    }
}

TYPED_TEST(FieldTest, CommutativeAssociativeDistributive)
{
    using F = typename FieldTest<TypeParam>::F;
    for (int i = 0; i < 20; ++i) {
        const F a = this->rand(), b = this->rand(), c = this->rand();
        EXPECT_EQ(a + b, b + a);
        EXPECT_EQ(a * b, b * a);
        EXPECT_EQ((a + b) + c, a + (b + c));
        EXPECT_EQ((a * b) * c, a * (b * c));
        EXPECT_EQ(a * (b + c), a * b + a * c);
    }
}

TYPED_TEST(FieldTest, SqrMatchesMul)
{
    for (int i = 0; i < 20; ++i) {
        const auto a = this->rand();
        EXPECT_EQ(a.sqr(), a * a);
        EXPECT_EQ(a.dbl(), a + a);
    }
}

TYPED_TEST(FieldTest, InverseRoundTrip)
{
    using F = typename FieldTest<TypeParam>::F;
    for (int i = 0; i < 10; ++i) {
        F a = this->rand();
        if (a.isZero())
            a = F::fromU64(3);
        EXPECT_EQ(a * a.inverse(), F::one());
        EXPECT_EQ(a.inverse().inverse(), a);
    }
    EXPECT_EQ(F::one().inverse(), F::one());
}

TYPED_TEST(FieldTest, RawRoundTrip)
{
    using F = typename FieldTest<TypeParam>::F;
    for (int i = 0; i < 20; ++i) {
        const auto raw =
            F::Base::randomBelow(this->prng_, F::modulus());
        EXPECT_EQ(F::fromRaw(raw).toRaw(), raw);
    }
    EXPECT_TRUE(F::zero().toRaw().isZero());
    EXPECT_TRUE(F::one().toRaw().isU64(1));
}

TYPED_TEST(FieldTest, SmallIntegerArithmetic)
{
    using F = typename FieldTest<TypeParam>::F;
    EXPECT_EQ(F::fromU64(3) + F::fromU64(4), F::fromU64(7));
    EXPECT_EQ(F::fromU64(6) * F::fromU64(7), F::fromU64(42));
    EXPECT_EQ(F::fromU64(10) - F::fromU64(4), F::fromU64(6));
}

TYPED_TEST(FieldTest, PowMatchesRepeatedMul)
{
    using F = typename FieldTest<TypeParam>::F;
    const F a = this->rand();
    F expect = F::one();
    for (std::uint64_t e = 0; e < 12; ++e) {
        EXPECT_EQ(a.pow(BigInt<1>::fromU64(e)), expect);
        expect *= a;
    }
}

TYPED_TEST(FieldTest, FermatLittleTheorem)
{
    using F = typename FieldTest<TypeParam>::F;
    auto e = F::modulus();
    e.subInPlace(F::Base::fromU64(1));
    F a = this->rand();
    if (a.isZero())
        a = F::fromU64(2);
    EXPECT_EQ(a.pow(e), F::one());
}

TYPED_TEST(FieldTest, LegendreAndSqrt)
{
    using F = typename FieldTest<TypeParam>::F;
    EXPECT_EQ(F::zero().legendre(), 0);
    EXPECT_EQ(F::one().legendre(), 1);
    // The generated QNR really is a non-residue.
    EXPECT_EQ(F::fromU64(TypeParam::kQnrSmall).legendre(), -1);
    int qr_seen = 0;
    for (int i = 0; i < 8; ++i) {
        const F a = this->rand();
        const F square = a.sqr();
        EXPECT_EQ(square.legendre(), a.isZero() ? 0 : 1);
        const F root = square.sqrt();
        EXPECT_EQ(root.sqr(), square);
        ++qr_seen;
    }
    EXPECT_GT(qr_seen, 0);
}

TYPED_TEST(FieldTest, SqrtIsCanonical)
{
    // sqrt returns the lexicographically smaller of the two roots.
    for (int i = 0; i < 5; ++i) {
        const auto a = this->rand();
        const auto root = a.sqr().sqrt();
        const auto other = -root;
        EXPECT_LE(root.toRaw(), other.toRaw());
    }
}

TYPED_TEST(FieldTest, RootOfUnityHasExactOrder)
{
    using F = typename FieldTest<TypeParam>::F;
    const F w =
        F::fromRaw(F::Base::fromLimbs(TypeParam::kRootOfUnity));
    // w^(2^adicity) == 1 but w^(2^(adicity-1)) == -1.
    F v = w;
    for (unsigned i = 0; i + 1 < TypeParam::kTwoAdicity; ++i)
        v = v.sqr();
    EXPECT_EQ(v, -F::one());
    EXPECT_EQ(v.sqr(), F::one());
}

TYPED_TEST(FieldTest, RandomIsReducedAndVaried)
{
    using F = typename FieldTest<TypeParam>::F;
    const F a = this->rand();
    const F b = this->rand();
    EXPECT_FALSE(a == b); // astronomically unlikely
    EXPECT_LT(a.toRaw(), F::modulus());
}

} // namespace
} // namespace distmsm
