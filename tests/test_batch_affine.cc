/**
 * @file
 * Batched-affine bucket accumulation and batch-inversion tests:
 * group equality against the legacy bucketSumTree on random and
 * adversarial bucket contents (duplicates, inverse pairs, identity
 * contributions, empty and single-point buckets), the amortized
 * field-op accounting (~6 muls per accumulated point against pacc's
 * 10), and the scratch-buffer / zero-skipping batchInverse variants.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/ec/curves.h"
#include "src/field/batch_inverse.h"
#include "src/gpusim/stats.h"
#include "src/msm/batch_affine.h"
#include "src/msm/engine.h"
#include "src/msm/workload.h"
#include "src/support/prng.h"

namespace distmsm {
namespace {

using Curve = Bn254;
using Affine = AffinePoint<Curve>;
using Xyzz = XYZZPoint<Curve>;
using Fq = Curve::Fq;
using Buckets = std::vector<std::vector<std::uint32_t>>;

/** Sum every bucket with the legacy pacc-based tree. */
std::vector<Xyzz>
legacySums(const Buckets &buckets,
           const std::vector<Affine> &points)
{
    gpusim::KernelStats stats;
    std::vector<Xyzz> sums(buckets.size(), Xyzz::identity());
    for (std::size_t b = 0; b < buckets.size(); ++b) {
        sums[b] = msm::bucketSumTree<Curve>(
            buckets[b], [&](std::uint32_t id) { return points[id]; },
            /*threads_per_bucket=*/1, stats);
    }
    return sums;
}

/** Sum every bucket with the batched-affine path. */
std::vector<Xyzz>
batchedSums(const Buckets &buckets,
            const std::vector<Affine> &points,
            gpusim::KernelStats *stats_out = nullptr)
{
    gpusim::KernelStats stats;
    msm::BatchAffineScratch<Curve> scratch;
    std::vector<Xyzz> sums(buckets.size(), Xyzz::identity());
    msm::batchAffineAccumulate<Curve>(
        buckets, 0, buckets.size(),
        [&](std::uint32_t id) { return points[id]; }, sums, stats,
        scratch);
    if (stats_out != nullptr)
        *stats_out = stats;
    return sums;
}

void
expectSameSums(const Buckets &buckets,
               const std::vector<Affine> &points)
{
    const auto expected = legacySums(buckets, points);
    const auto got = batchedSums(buckets, points);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t b = 0; b < buckets.size(); ++b) {
        SCOPED_TRACE("bucket " + std::to_string(b));
        EXPECT_EQ(got[b], expected[b]);
    }
}

TEST(BatchAffine, MatchesLegacyOnRandomBuckets)
{
    Prng prng(0xBA7C4);
    const auto points = msm::generatePoints<Curve>(256, prng);
    Buckets buckets(37);
    for (int i = 0; i < 600; ++i) {
        buckets[prng.below(buckets.size())].push_back(
            static_cast<std::uint32_t>(prng.below(points.size())));
    }
    expectSameSums(buckets, points);
}

TEST(BatchAffine, EmptyAndSinglePointBuckets)
{
    Prng prng(0xBA7C5);
    const auto points = msm::generatePoints<Curve>(8, prng);
    const Buckets buckets = {{}, {3}, {}, {0, 1}, {7}, {}};
    expectSameSums(buckets, points);
}

TEST(BatchAffine, DuplicatePointsForceDoubling)
{
    // Repeated ids make x2 == x1 with y2 == y1: the doubling edge
    // case must route through the XYZZ spill, not the shared slope.
    Prng prng(0xBA7C6);
    const auto points = msm::generatePoints<Curve>(6, prng);
    const Buckets buckets = {
        {0, 0},             // immediate doubling
        {1, 1, 1, 1},       // repeated doubling + re-merge
        {2, 3, 2, 3, 2},    // interleaved duplicates
        {4, 4, 5},          // doubling then a fresh point
    };
    gpusim::KernelStats stats;
    const auto got = batchedSums(buckets, points, &stats);
    const auto expected = legacySums(buckets, points);
    for (std::size_t b = 0; b < buckets.size(); ++b)
        EXPECT_EQ(got[b], expected[b]) << "bucket " << b;
    EXPECT_GT(stats.paccOps, 0u); // the spill path actually ran
}

TEST(BatchAffine, InversePairsCancel)
{
    // point_of maps odd ids to the negation of the even id's point,
    // as the engine's signed-digit path does: P + (-P) hits the
    // x2 == x1, y2 == -y1 cancellation edge.
    Prng prng(0xBA7C7);
    const auto base = msm::generatePoints<Curve>(4, prng);
    auto point_of = [&](std::uint32_t id) {
        const Affine p = base[id / 2];
        return (id % 2 != 0) ? p.negated() : p;
    };
    const Buckets buckets = {
        {0, 1},          // P - P = identity
        {0, 1, 2},       // cancellation then a survivor
        {2, 4, 3, 5},    // interleaved pair cancellations
        {6, 6, 7, 7},    // double then cancel the doubles
    };
    gpusim::KernelStats batch_stats, legacy_stats;
    msm::BatchAffineScratch<Curve> scratch;
    std::vector<Xyzz> got(buckets.size(), Xyzz::identity());
    msm::batchAffineAccumulate<Curve>(buckets, 0, buckets.size(),
                                      point_of, got, batch_stats,
                                      scratch);
    for (std::size_t b = 0; b < buckets.size(); ++b) {
        const auto expected = msm::bucketSumTree<Curve>(
            buckets[b], point_of, 1, legacy_stats);
        EXPECT_EQ(got[b], expected) << "bucket " << b;
    }
    EXPECT_TRUE(got[0].isIdentity());
}

TEST(BatchAffine, IdentityContributionsAreSkipped)
{
    // Ids mapping to the point at infinity (bucket 0 / zero digits
    // in the engine) contribute nothing and must not poison a batch.
    Prng prng(0xBA7C8);
    const auto base = msm::generatePoints<Curve>(3, prng);
    auto point_of = [&](std::uint32_t id) {
        return id == 9 ? Affine::identity() : base[id % 3];
    };
    const Buckets buckets = {{9, 9, 9}, {9, 0, 9, 1}, {2, 9}};
    gpusim::KernelStats stats;
    msm::BatchAffineScratch<Curve> scratch;
    std::vector<Xyzz> got(buckets.size(), Xyzz::identity());
    msm::batchAffineAccumulate<Curve>(buckets, 0, buckets.size(),
                                      point_of, got, stats, scratch);
    EXPECT_TRUE(got[0].isIdentity());
    EXPECT_EQ(got[1], padd(Xyzz::fromAffine(base[0]),
                           Xyzz::fromAffine(base[1])));
    EXPECT_EQ(got[2], Xyzz::fromAffine(base[2]));
}

TEST(BatchAffine, SubrangeOnlyTouchesItsSlots)
{
    Prng prng(0xBA7C9);
    const auto points = msm::generatePoints<Curve>(16, prng);
    Buckets buckets(8);
    for (int i = 0; i < 64; ++i)
        buckets[prng.below(8)].push_back(
            static_cast<std::uint32_t>(prng.below(16)));
    const auto expected = legacySums(buckets, points);

    gpusim::KernelStats stats;
    msm::BatchAffineScratch<Curve> scratch;
    std::vector<Xyzz> sums(buckets.size(), Xyzz::identity());
    msm::batchAffineAccumulate<Curve>(
        buckets, 2, 5, [&](std::uint32_t id) { return points[id]; },
        sums, stats, scratch);
    for (std::size_t b = 0; b < buckets.size(); ++b) {
        if (b >= 2 && b < 5)
            EXPECT_EQ(sums[b], expected[b]) << "bucket " << b;
        else
            EXPECT_TRUE(sums[b].isIdentity()) << "bucket " << b;
    }
}

TEST(BatchAffine, FieldMulCountDropsBelowPacc)
{
    // The acceptance accounting: with wide rounds the amortized cost
    // is 3 intrinsic + ~3 inversion muls per accumulated point, well
    // under the 10 muls/point the pacc path pays.
    Prng prng(0xBA7CA);
    const std::size_t kBuckets = 64, kPerBucket = 8;
    const auto points =
        msm::generatePoints<Curve>(kBuckets * kPerBucket, prng);
    Buckets buckets(kBuckets);
    for (std::size_t b = 0; b < kBuckets; ++b) {
        for (std::size_t j = 0; j < kPerBucket; ++j)
            buckets[b].push_back(
                static_cast<std::uint32_t>(b * kPerBucket + j));
    }
    const std::size_t n = kBuckets * kPerBucket;

    auto &ops = ec::opCounters();
    ops.reset();
    const auto legacy = legacySums(buckets, points);
    const std::uint64_t legacy_muls = ops.mul;
    // n points, first of each bucket is a load: pacc on the rest.
    EXPECT_EQ(legacy_muls, 10 * (n - kBuckets));

    ops.reset();
    gpusim::KernelStats stats;
    const auto batched = batchedSums(buckets, points, &stats);
    const std::uint64_t batch_muls = ops.mul;
    for (std::size_t b = 0; b < kBuckets; ++b)
        EXPECT_EQ(batched[b], legacy[b]);

    // kPerBucket - 1 adds per bucket, each 3 intrinsic muls plus
    // 3(m-1)/m < 3 amortized inversion muls; the pairwise tree
    // needs only log2(kPerBucket) inversion rounds.
    const std::uint64_t adds = n - kBuckets;
    EXPECT_EQ(stats.affineAddOps, adds);
    EXPECT_EQ(stats.batchInvOps, 3u); // 8 -> 4 -> 2 -> 1
    EXPECT_EQ(ops.inv, 3u);
    EXPECT_LT(batch_muls, 6 * adds);
    EXPECT_LT(3 * batch_muls, 2 * legacy_muls); // > 1.5x fewer muls
}

// ---------------------------------------------------------------
// batchInverse variants.
// ---------------------------------------------------------------

TEST(BatchInverse, ScratchOverloadMatchesElementwise)
{
    Prng prng(0xBA7CB);
    std::vector<Fq> scratch;
    // Reuse one scratch across differently-sized batches.
    for (const std::size_t n : {1u, 2u, 7u, 64u, 3u}) {
        std::vector<Fq> values(n);
        for (auto &v : values) {
            do {
                v = Fq::random(prng);
            } while (v.isZero());
        }
        const auto saved = values;
        batchInverse(values, scratch);
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(values[i], saved[i].inverse()) << i;
    }
}

TEST(BatchInverse, SkipZeroFlagsAndInverts)
{
    Prng prng(0xBA7CC);
    std::vector<Fq> scratch;
    std::vector<std::uint8_t> skipped;
    // Zeros at the front, middle and back of the batch.
    std::vector<Fq> values(9);
    const std::vector<std::size_t> zeros = {0, 4, 8};
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (std::find(zeros.begin(), zeros.end(), i) != zeros.end())
            values[i] = Fq::zero();
        else
            do {
                values[i] = Fq::random(prng);
            } while (values[i].isZero());
    }
    const auto saved = values;
    const std::size_t n_skipped =
        batchInverseSkipZero(values, scratch, skipped);
    EXPECT_EQ(n_skipped, zeros.size());
    ASSERT_EQ(skipped.size(), values.size());
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (saved[i].isZero()) {
            EXPECT_EQ(skipped[i], 1) << i;
            EXPECT_TRUE(values[i].isZero()) << i;
        } else {
            EXPECT_EQ(skipped[i], 0) << i;
            EXPECT_EQ(values[i], saved[i].inverse()) << i;
        }
    }
}

TEST(BatchInverse, SkipZeroAllZeroAndEmpty)
{
    std::vector<Fq> scratch;
    std::vector<std::uint8_t> skipped;
    std::vector<Fq> values;
    EXPECT_EQ(batchInverseSkipZero(values, scratch, skipped), 0u);
    EXPECT_TRUE(skipped.empty());
    values.assign(5, Fq::zero());
    EXPECT_EQ(batchInverseSkipZero(values, scratch, skipped), 5u);
    for (const auto &v : values)
        EXPECT_TRUE(v.isZero());
}

TEST(BatchInverse, SkipZeroSingleElement)
{
    Prng prng(0xBA7CD);
    std::vector<Fq> scratch;
    std::vector<std::uint8_t> skipped;
    // Single non-zero: the prefix walk degenerates to one step.
    const Fq a = Fq::random(prng);
    std::vector<Fq> values{a};
    EXPECT_EQ(batchInverseSkipZero(values, scratch, skipped), 0u);
    EXPECT_EQ(values[0], a.inverse());
    // Single zero: skipped, left untouched.
    values = {Fq::zero()};
    EXPECT_EQ(batchInverseSkipZero(values, scratch, skipped), 1u);
    EXPECT_EQ(skipped[0], 1);
    EXPECT_TRUE(values[0].isZero());
}

TEST(BatchInverse, SkipZeroAtBatchBoundaries)
{
    // Zero in the first slot exercises the `!skipped[0]` tail write;
    // zero in the last slot exercises the backward walk's entry.
    Prng prng(0xBA7CE);
    std::vector<Fq> scratch;
    std::vector<std::uint8_t> skipped;
    for (const std::size_t zero_at : {std::size_t{0}, std::size_t{5}}) {
        std::vector<Fq> values;
        for (std::size_t i = 0; i < 6; ++i)
            values.push_back(i == zero_at ? Fq::zero()
                                          : Fq::random(prng));
        const auto saved = values;
        EXPECT_EQ(batchInverseSkipZero(values, scratch, skipped),
                  1u);
        for (std::size_t i = 0; i < values.size(); ++i) {
            if (i == zero_at) {
                EXPECT_EQ(skipped[i], 1);
                EXPECT_TRUE(values[i].isZero());
            } else {
                EXPECT_EQ(skipped[i], 0);
                EXPECT_EQ(values[i], saved[i].inverse()) << i;
            }
        }
    }
}

} // namespace
} // namespace distmsm
