# Empty compiler generated dependencies file for kernel_listing.
# This may be replaced when dependencies are built.
