file(REMOVE_RECURSE
  "CMakeFiles/kernel_listing.dir/kernel_listing.cpp.o"
  "CMakeFiles/kernel_listing.dir/kernel_listing.cpp.o.d"
  "kernel_listing"
  "kernel_listing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_listing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
