# Empty compiler generated dependencies file for msm_cli.
# This may be replaced when dependencies are built.
