file(REMOVE_RECURSE
  "CMakeFiles/msm_cli.dir/msm_cli.cpp.o"
  "CMakeFiles/msm_cli.dir/msm_cli.cpp.o.d"
  "msm_cli"
  "msm_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msm_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
