# Empty dependencies file for zksnark_pipeline.
# This may be replaced when dependencies are built.
