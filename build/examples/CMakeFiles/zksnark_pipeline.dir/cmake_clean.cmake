file(REMOVE_RECURSE
  "CMakeFiles/zksnark_pipeline.dir/zksnark_pipeline.cpp.o"
  "CMakeFiles/zksnark_pipeline.dir/zksnark_pipeline.cpp.o.d"
  "zksnark_pipeline"
  "zksnark_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zksnark_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
