file(REMOVE_RECURSE
  "CMakeFiles/window_tuner.dir/window_tuner.cpp.o"
  "CMakeFiles/window_tuner.dir/window_tuner.cpp.o.d"
  "window_tuner"
  "window_tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/window_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
