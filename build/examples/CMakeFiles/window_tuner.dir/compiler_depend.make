# Empty compiler generated dependencies file for window_tuner.
# This may be replaced when dependencies are built.
