# Empty dependencies file for distmsm.
# This may be replaced when dependencies are built.
