# Empty compiler generated dependencies file for distmsm.
# This may be replaced when dependencies are built.
