file(REMOVE_RECURSE
  "libdistmsm.a"
)
