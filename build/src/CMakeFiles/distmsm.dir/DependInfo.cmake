
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpusim/cluster.cc" "src/CMakeFiles/distmsm.dir/gpusim/cluster.cc.o" "gcc" "src/CMakeFiles/distmsm.dir/gpusim/cluster.cc.o.d"
  "/root/repo/src/gpusim/cost_model.cc" "src/CMakeFiles/distmsm.dir/gpusim/cost_model.cc.o" "gcc" "src/CMakeFiles/distmsm.dir/gpusim/cost_model.cc.o.d"
  "/root/repo/src/gpusim/device.cc" "src/CMakeFiles/distmsm.dir/gpusim/device.cc.o" "gcc" "src/CMakeFiles/distmsm.dir/gpusim/device.cc.o.d"
  "/root/repo/src/gpusim/executor.cc" "src/CMakeFiles/distmsm.dir/gpusim/executor.cc.o" "gcc" "src/CMakeFiles/distmsm.dir/gpusim/executor.cc.o.d"
  "/root/repo/src/msm/baseline_profiles.cc" "src/CMakeFiles/distmsm.dir/msm/baseline_profiles.cc.o" "gcc" "src/CMakeFiles/distmsm.dir/msm/baseline_profiles.cc.o.d"
  "/root/repo/src/msm/pipeline.cc" "src/CMakeFiles/distmsm.dir/msm/pipeline.cc.o" "gcc" "src/CMakeFiles/distmsm.dir/msm/pipeline.cc.o.d"
  "/root/repo/src/msm/planner.cc" "src/CMakeFiles/distmsm.dir/msm/planner.cc.o" "gcc" "src/CMakeFiles/distmsm.dir/msm/planner.cc.o.d"
  "/root/repo/src/msm/scatter.cc" "src/CMakeFiles/distmsm.dir/msm/scatter.cc.o" "gcc" "src/CMakeFiles/distmsm.dir/msm/scatter.cc.o.d"
  "/root/repo/src/msm/workload_model.cc" "src/CMakeFiles/distmsm.dir/msm/workload_model.cc.o" "gcc" "src/CMakeFiles/distmsm.dir/msm/workload_model.cc.o.d"
  "/root/repo/src/sched/codegen.cc" "src/CMakeFiles/distmsm.dir/sched/codegen.cc.o" "gcc" "src/CMakeFiles/distmsm.dir/sched/codegen.cc.o.d"
  "/root/repo/src/sched/dag.cc" "src/CMakeFiles/distmsm.dir/sched/dag.cc.o" "gcc" "src/CMakeFiles/distmsm.dir/sched/dag.cc.o.d"
  "/root/repo/src/sched/schedule_search.cc" "src/CMakeFiles/distmsm.dir/sched/schedule_search.cc.o" "gcc" "src/CMakeFiles/distmsm.dir/sched/schedule_search.cc.o.d"
  "/root/repo/src/sched/spill.cc" "src/CMakeFiles/distmsm.dir/sched/spill.cc.o" "gcc" "src/CMakeFiles/distmsm.dir/sched/spill.cc.o.d"
  "/root/repo/src/support/hex.cc" "src/CMakeFiles/distmsm.dir/support/hex.cc.o" "gcc" "src/CMakeFiles/distmsm.dir/support/hex.cc.o.d"
  "/root/repo/src/support/table.cc" "src/CMakeFiles/distmsm.dir/support/table.cc.o" "gcc" "src/CMakeFiles/distmsm.dir/support/table.cc.o.d"
  "/root/repo/src/tcmul/compaction.cc" "src/CMakeFiles/distmsm.dir/tcmul/compaction.cc.o" "gcc" "src/CMakeFiles/distmsm.dir/tcmul/compaction.cc.o.d"
  "/root/repo/src/tcmul/digit_matrix.cc" "src/CMakeFiles/distmsm.dir/tcmul/digit_matrix.cc.o" "gcc" "src/CMakeFiles/distmsm.dir/tcmul/digit_matrix.cc.o.d"
  "/root/repo/src/tcmul/fragment.cc" "src/CMakeFiles/distmsm.dir/tcmul/fragment.cc.o" "gcc" "src/CMakeFiles/distmsm.dir/tcmul/fragment.cc.o.d"
  "/root/repo/src/zksnark/workloads.cc" "src/CMakeFiles/distmsm.dir/zksnark/workloads.cc.o" "gcc" "src/CMakeFiles/distmsm.dir/zksnark/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
