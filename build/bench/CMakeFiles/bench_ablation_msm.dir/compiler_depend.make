# Empty compiler generated dependencies file for bench_ablation_msm.
# This may be replaced when dependencies are built.
