file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_msm.dir/bench_ablation_msm.cc.o"
  "CMakeFiles/bench_ablation_msm.dir/bench_ablation_msm.cc.o.d"
  "bench_ablation_msm"
  "bench_ablation_msm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_msm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
