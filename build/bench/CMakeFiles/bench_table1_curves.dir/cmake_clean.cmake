file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_curves.dir/bench_table1_curves.cc.o"
  "CMakeFiles/bench_table1_curves.dir/bench_table1_curves.cc.o.d"
  "bench_table1_curves"
  "bench_table1_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
