# Empty compiler generated dependencies file for bench_micro_tcmul.
# This may be replaced when dependencies are built.
