file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_tcmul.dir/bench_micro_tcmul.cc.o"
  "CMakeFiles/bench_micro_tcmul.dir/bench_micro_tcmul.cc.o.d"
  "bench_micro_tcmul"
  "bench_micro_tcmul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_tcmul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
