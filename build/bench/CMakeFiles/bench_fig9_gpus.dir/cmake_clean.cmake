file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_gpus.dir/bench_fig9_gpus.cc.o"
  "CMakeFiles/bench_fig9_gpus.dir/bench_fig9_gpus.cc.o.d"
  "bench_fig9_gpus"
  "bench_fig9_gpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_gpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
