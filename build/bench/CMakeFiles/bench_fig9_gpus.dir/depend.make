# Empty dependencies file for bench_fig9_gpus.
# This may be replaced when dependencies are built.
