# Empty dependencies file for bench_fig12_padd.
# This may be replaced when dependencies are built.
