file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_padd.dir/bench_fig12_padd.cc.o"
  "CMakeFiles/bench_fig12_padd.dir/bench_fig12_padd.cc.o.d"
  "bench_fig12_padd"
  "bench_fig12_padd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_padd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
