# Empty dependencies file for bench_fig11_scatter.
# This may be replaced when dependencies are built.
