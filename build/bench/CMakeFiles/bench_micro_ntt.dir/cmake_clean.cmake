file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_ntt.dir/bench_micro_ntt.cc.o"
  "CMakeFiles/bench_micro_ntt.dir/bench_micro_ntt.cc.o.d"
  "bench_micro_ntt"
  "bench_micro_ntt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_ntt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
