# Empty dependencies file for bench_micro_ntt.
# This may be replaced when dependencies are built.
