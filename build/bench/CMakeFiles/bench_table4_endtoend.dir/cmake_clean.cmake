file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_endtoend.dir/bench_table4_endtoend.cc.o"
  "CMakeFiles/bench_table4_endtoend.dir/bench_table4_endtoend.cc.o.d"
  "bench_table4_endtoend"
  "bench_table4_endtoend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_endtoend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
