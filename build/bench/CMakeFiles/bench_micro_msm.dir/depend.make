# Empty dependencies file for bench_micro_msm.
# This may be replaced when dependencies are built.
