file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_msm.dir/bench_micro_msm.cc.o"
  "CMakeFiles/bench_micro_msm.dir/bench_micro_msm.cc.o.d"
  "bench_micro_msm"
  "bench_micro_msm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_msm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
