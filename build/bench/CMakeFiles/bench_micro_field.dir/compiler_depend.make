# Empty compiler generated dependencies file for bench_micro_field.
# This may be replaced when dependencies are built.
