file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_field.dir/bench_micro_field.cc.o"
  "CMakeFiles/bench_micro_field.dir/bench_micro_field.cc.o.d"
  "bench_micro_field"
  "bench_micro_field.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_field.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
