file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_ec.dir/bench_micro_ec.cc.o"
  "CMakeFiles/bench_micro_ec.dir/bench_micro_ec.cc.o.d"
  "bench_micro_ec"
  "bench_micro_ec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_ec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
