# Empty compiler generated dependencies file for bench_micro_ec.
# This may be replaced when dependencies are built.
