file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_workload.dir/bench_fig3_workload.cc.o"
  "CMakeFiles/bench_fig3_workload.dir/bench_fig3_workload.cc.o.d"
  "bench_fig3_workload"
  "bench_fig3_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
