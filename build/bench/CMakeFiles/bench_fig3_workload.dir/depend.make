# Empty dependencies file for bench_fig3_workload.
# This may be replaced when dependencies are built.
