file(REMOVE_RECURSE
  "CMakeFiles/test_batch_verify.dir/test_batch_verify.cc.o"
  "CMakeFiles/test_batch_verify.dir/test_batch_verify.cc.o.d"
  "test_batch_verify"
  "test_batch_verify.pdb"
  "test_batch_verify[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_batch_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
