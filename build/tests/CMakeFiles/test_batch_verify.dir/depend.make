# Empty dependencies file for test_batch_verify.
# This may be replaced when dependencies are built.
