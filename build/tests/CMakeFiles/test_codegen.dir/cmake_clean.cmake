file(REMOVE_RECURSE
  "CMakeFiles/test_codegen.dir/test_codegen.cc.o"
  "CMakeFiles/test_codegen.dir/test_codegen.cc.o.d"
  "test_codegen"
  "test_codegen.pdb"
  "test_codegen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
