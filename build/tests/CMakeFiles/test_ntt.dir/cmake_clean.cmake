file(REMOVE_RECURSE
  "CMakeFiles/test_ntt.dir/test_ntt.cc.o"
  "CMakeFiles/test_ntt.dir/test_ntt.cc.o.d"
  "test_ntt"
  "test_ntt.pdb"
  "test_ntt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ntt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
