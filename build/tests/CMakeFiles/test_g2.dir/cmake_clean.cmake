file(REMOVE_RECURSE
  "CMakeFiles/test_g2.dir/test_g2.cc.o"
  "CMakeFiles/test_g2.dir/test_g2.cc.o.d"
  "test_g2"
  "test_g2.pdb"
  "test_g2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_g2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
