# Empty compiler generated dependencies file for test_g2.
# This may be replaced when dependencies are built.
