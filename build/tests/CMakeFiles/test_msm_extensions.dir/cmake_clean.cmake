file(REMOVE_RECURSE
  "CMakeFiles/test_msm_extensions.dir/test_msm_extensions.cc.o"
  "CMakeFiles/test_msm_extensions.dir/test_msm_extensions.cc.o.d"
  "test_msm_extensions"
  "test_msm_extensions.pdb"
  "test_msm_extensions[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_msm_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
