file(REMOVE_RECURSE
  "CMakeFiles/test_montgomery.dir/test_montgomery.cc.o"
  "CMakeFiles/test_montgomery.dir/test_montgomery.cc.o.d"
  "test_montgomery"
  "test_montgomery.pdb"
  "test_montgomery[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_montgomery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
