# Empty compiler generated dependencies file for test_montgomery.
# This may be replaced when dependencies are built.
