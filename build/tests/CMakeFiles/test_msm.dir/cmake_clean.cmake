file(REMOVE_RECURSE
  "CMakeFiles/test_msm.dir/test_msm.cc.o"
  "CMakeFiles/test_msm.dir/test_msm.cc.o.d"
  "test_msm"
  "test_msm.pdb"
  "test_msm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_msm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
