# Empty dependencies file for test_msm.
# This may be replaced when dependencies are built.
