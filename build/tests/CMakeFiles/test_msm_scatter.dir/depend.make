# Empty dependencies file for test_msm_scatter.
# This may be replaced when dependencies are built.
