file(REMOVE_RECURSE
  "CMakeFiles/test_msm_scatter.dir/test_msm_scatter.cc.o"
  "CMakeFiles/test_msm_scatter.dir/test_msm_scatter.cc.o.d"
  "test_msm_scatter"
  "test_msm_scatter.pdb"
  "test_msm_scatter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_msm_scatter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
