# Empty dependencies file for test_engine_pipeline.
# This may be replaced when dependencies are built.
