file(REMOVE_RECURSE
  "CMakeFiles/test_engine_pipeline.dir/test_engine_pipeline.cc.o"
  "CMakeFiles/test_engine_pipeline.dir/test_engine_pipeline.cc.o.d"
  "test_engine_pipeline"
  "test_engine_pipeline.pdb"
  "test_engine_pipeline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
