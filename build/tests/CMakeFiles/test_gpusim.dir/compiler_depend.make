# Empty compiler generated dependencies file for test_gpusim.
# This may be replaced when dependencies are built.
