file(REMOVE_RECURSE
  "CMakeFiles/test_field.dir/test_field.cc.o"
  "CMakeFiles/test_field.dir/test_field.cc.o.d"
  "test_field"
  "test_field.pdb"
  "test_field[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_field.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
