file(REMOVE_RECURSE
  "CMakeFiles/test_ec.dir/test_ec.cc.o"
  "CMakeFiles/test_ec.dir/test_ec.cc.o.d"
  "test_ec"
  "test_ec.pdb"
  "test_ec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
