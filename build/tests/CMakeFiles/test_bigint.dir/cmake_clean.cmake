file(REMOVE_RECURSE
  "CMakeFiles/test_bigint.dir/test_bigint.cc.o"
  "CMakeFiles/test_bigint.dir/test_bigint.cc.o.d"
  "test_bigint"
  "test_bigint.pdb"
  "test_bigint[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bigint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
