# Empty dependencies file for test_bigint.
# This may be replaced when dependencies are built.
