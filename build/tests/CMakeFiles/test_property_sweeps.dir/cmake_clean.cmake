file(REMOVE_RECURSE
  "CMakeFiles/test_property_sweeps.dir/test_property_sweeps.cc.o"
  "CMakeFiles/test_property_sweeps.dir/test_property_sweeps.cc.o.d"
  "test_property_sweeps"
  "test_property_sweeps.pdb"
  "test_property_sweeps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_sweeps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
