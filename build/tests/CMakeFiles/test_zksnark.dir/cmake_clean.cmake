file(REMOVE_RECURSE
  "CMakeFiles/test_zksnark.dir/test_zksnark.cc.o"
  "CMakeFiles/test_zksnark.dir/test_zksnark.cc.o.d"
  "test_zksnark"
  "test_zksnark.pdb"
  "test_zksnark[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zksnark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
