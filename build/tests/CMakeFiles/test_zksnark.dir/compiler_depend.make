# Empty compiler generated dependencies file for test_zksnark.
# This may be replaced when dependencies are built.
