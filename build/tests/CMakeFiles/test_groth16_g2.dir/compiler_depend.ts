# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for test_groth16_g2.
