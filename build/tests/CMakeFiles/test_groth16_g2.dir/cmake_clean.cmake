file(REMOVE_RECURSE
  "CMakeFiles/test_groth16_g2.dir/test_groth16_g2.cc.o"
  "CMakeFiles/test_groth16_g2.dir/test_groth16_g2.cc.o.d"
  "test_groth16_g2"
  "test_groth16_g2.pdb"
  "test_groth16_g2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_groth16_g2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
