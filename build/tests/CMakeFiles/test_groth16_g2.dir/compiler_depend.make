# Empty compiler generated dependencies file for test_groth16_g2.
# This may be replaced when dependencies are built.
