# Empty dependencies file for test_tcmul.
# This may be replaced when dependencies are built.
