file(REMOVE_RECURSE
  "CMakeFiles/test_tcmul.dir/test_tcmul.cc.o"
  "CMakeFiles/test_tcmul.dir/test_tcmul.cc.o.d"
  "test_tcmul"
  "test_tcmul.pdb"
  "test_tcmul[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tcmul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
