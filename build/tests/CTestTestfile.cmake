# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_bigint[1]_include.cmake")
include("/root/repo/build/tests/test_montgomery[1]_include.cmake")
include("/root/repo/build/tests/test_field[1]_include.cmake")
include("/root/repo/build/tests/test_ec[1]_include.cmake")
include("/root/repo/build/tests/test_sched[1]_include.cmake")
include("/root/repo/build/tests/test_tcmul[1]_include.cmake")
include("/root/repo/build/tests/test_gpusim[1]_include.cmake")
include("/root/repo/build/tests/test_msm_scatter[1]_include.cmake")
include("/root/repo/build/tests/test_msm[1]_include.cmake")
include("/root/repo/build/tests/test_msm_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_encoding[1]_include.cmake")
include("/root/repo/build/tests/test_property_sweeps[1]_include.cmake")
include("/root/repo/build/tests/test_engine_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_g2[1]_include.cmake")
include("/root/repo/build/tests/test_groth16_g2[1]_include.cmake")
include("/root/repo/build/tests/test_gadgets[1]_include.cmake")
include("/root/repo/build/tests/test_codegen[1]_include.cmake")
include("/root/repo/build/tests/test_batch_verify[1]_include.cmake")
include("/root/repo/build/tests/test_ntt[1]_include.cmake")
include("/root/repo/build/tests/test_zksnark[1]_include.cmake")
