/**
 * @file
 * Regenerates Figure 3: per-thread workload estimation as a function
 * of the window size s, for 1/2/4/8/16-GPU platforms, using the
 * Section 3.1 formulas (N = 2^26, N_T = 2^16, lambda = 253),
 * normalized to each platform's smallest value as in the paper.
 */

#include "bench/common.h"

#include "src/msm/workload_model.h"

int
main()
{
    using namespace distmsm;
    using msm::WorkloadConfig;
    bench::banner(
        "Figure 3", "per-thread workload estimation",
        "Section 3.1 formulas evaluated exactly; paper notes the "
        "optimum at s = 20 for 1 GPU and a smaller optimum for "
        "multi-GPU platforms");

    const std::vector<int> platforms = {1, 2, 4, 8, 16};
    TextTable t;
    {
        std::vector<std::string> header = {"s"};
        for (int g : platforms)
            header.push_back(std::to_string(g) + " GPU(s)");
        t.header(header);
    }

    // Normalization bases: minimum per platform.
    std::vector<double> min_cost(platforms.size(), 1e300);
    for (std::size_t p = 0; p < platforms.size(); ++p) {
        WorkloadConfig wc{1ull << 26, 253, platforms[p], 1ull << 16};
        for (unsigned s = 4; s <= 24; ++s) {
            min_cost[p] = std::min(min_cost[p],
                                   msm::perThreadWorkload(wc, s));
        }
    }

    for (unsigned s = 4; s <= 24; ++s) {
        std::vector<std::string> row = {std::to_string(s)};
        for (std::size_t p = 0; p < platforms.size(); ++p) {
            WorkloadConfig wc{1ull << 26, 253, platforms[p],
                              1ull << 16};
            row.push_back(TextTable::num(
                msm::perThreadWorkload(wc, s) / min_cost[p], 3));
        }
        t.row(row);
    }
    std::printf("%s\n", t.render().c_str());

    std::printf("optimal window size by platform:\n");
    for (int g : platforms) {
        WorkloadConfig wc{1ull << 26, 253, g, 1ull << 16};
        std::printf("  %2d GPU(s): s = %u\n", g,
                    msm::optimalWindowSize(wc));
    }
    std::printf("\npaper: optimal s = 20 on a single GPU; the "
                "optimum shifts to smaller windows as GPUs are "
                "added (the paper quotes s = 11 at 16 GPUs; the "
                "printed formulas saturate at s = 16 — see "
                "EXPERIMENTS.md).\n");
    return 0;
}
