/**
 * @file
 * Regenerates Figure 9: DistMSM vs Bellperson across GPU models
 * (NVIDIA A100, NVIDIA RTX 4090, AMD RX 6900XT), together with the
 * hardware-resource comparison the figure's left part shows.
 */

#include "bench/common.h"

#include "src/msm/baseline_profiles.h"
#include "src/msm/planner.h"

int
main()
{
    using namespace distmsm;
    using gpusim::Cluster;
    using gpusim::DeviceSpec;
    bench::banner(
        "Figure 9",
        "execution time of Bellperson and DistMSM across GPU models",
        "single-GPU simulation on each device model; BLS12-381 "
        "(Bellperson's curve), N = 2^24");

    const std::vector<DeviceSpec> devices = {
        DeviceSpec::a100(), DeviceSpec::rtx4090(),
        DeviceSpec::rx6900xt()};

    // Hardware comparison (the figure's left half).
    TextTable hw;
    hw.header({"GPU", "int32 TOPS", "int8 TC TOPS", "fp32 TFLOPS",
               "mem GB/s", "shmem/SM KB", "regs/SM"});
    for (const auto &d : devices) {
        hw.row({d.name, TextTable::num(d.int32Tops, 1),
                TextTable::num(d.tensorInt8Tops, 0),
                TextTable::num(d.fp32Tflops, 1),
                TextTable::num(d.memBandwidthGBs, 0),
                std::to_string(d.sharedMemPerSm / 1024),
                std::to_string(d.registersPerSm)});
    }
    std::printf("%s\n", hw.render().c_str());

    const auto curve = gpusim::CurveProfile::bls381();
    constexpr std::uint64_t kN = 1ull << 24;
    const msm::BaselineProfile *bellperson = nullptr;
    for (const auto &b : msm::allBaselines()) {
        if (std::string(b.name) == "Bellperson")
            bellperson = &b;
    }

    TextTable t;
    t.header({"GPU", "Bellperson (ms)", "DistMSM (ms)", "speedup"});
    std::vector<double> dist_ms, bell_ms;
    for (const auto &d : devices) {
        const Cluster cluster(d, 1);
        const double bell =
            bellperson->estimate(curve, kN, cluster).totalMs();
        const double dist =
            msm::estimateDistMsm(curve, kN, cluster, {}).totalMs();
        bell_ms.push_back(bell);
        dist_ms.push_back(dist);
        t.row({d.name, TextTable::num(bell, 1),
               TextTable::num(dist, 1),
               TextTable::num(bell / dist, 1) + "x"});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("DistMSM RTX4090 vs A100 speedup: %.2fx   (paper: "
                "1.89x)\n",
                dist_ms[0] / dist_ms[1]);
    std::printf("Bellperson RTX4090 vs A100 speedup: %.2fx   "
                "(paper: 1.61x)\n",
                bell_ms[0] / bell_ms[1]);
    std::printf("paper: DistMSM/Bellperson speedup ~16.5x on the "
                "NVIDIA GPUs and lower (~9.4x) on the RX 6900XT, "
                "whose integer throughput is notably lower.\n");
    return 0;
}
