/**
 * @file
 * Regenerates Table 3: execution time (ms) of DistMSM against the
 * best baseline (BG) across four curves, input sizes 2^22..2^28 and
 * 1/8/16/32 A100 GPUs. The BG superscript gives the winning
 * baseline's Table 2 identifier.
 *
 * Times come from the calibrated analytic simulator (DESIGN.md):
 * the algorithms' operation counts are exact, per-operation costs
 * follow the A100 model, and each baseline's efficiency factor was
 * calibrated once against the paper's single-GPU column. Absolute
 * milliseconds therefore differ from the DGX testbed; the comparison
 * shape (who wins, by what factor, where crossovers fall) is the
 * reproduction target.
 */

#include "bench/common.h"

#include "src/msm/baseline_profiles.h"
#include "src/msm/planner.h"

int
main()
{
    using namespace distmsm;
    using gpusim::Cluster;
    using gpusim::DeviceSpec;
    bench::banner(
        "Table 3",
        "execution time (ms) of DistMSM vs the best baseline (BG)",
        "calibrated analytic simulation on the A100 cluster model; "
        "superscript = winning baseline id per Table 2");

    const std::vector<int> gpu_counts = {1, 8, 16, 32};
    TextTable t;
    {
        std::vector<std::string> header = {"Curve", "Size"};
        for (int g : gpu_counts) {
            header.push_back("BG(" + std::to_string(g) + ")");
            header.push_back("DistMSM(" + std::to_string(g) + ")");
            header.push_back("x");
        }
        t.header(header);
    }

    double speedup_sum = 0.0;
    int speedup_count = 0;
    double multi_gpu_speedup_sum = 0.0;
    int multi_gpu_count = 0;
    double peak = 0.0;

    for (const auto &curve : bench::paperCurves()) {
        for (unsigned logn : {22u, 24u, 26u, 28u}) {
            std::vector<std::string> row = {
                curve.name, "2^" + std::to_string(logn)};
            for (int gpus : gpu_counts) {
                const Cluster cluster(DeviceSpec::a100(), gpus);
                const auto best = msm::bestBaseline(
                    curve, 1ull << logn, cluster);
                const auto dist = msm::estimateDistMsm(
                    curve, 1ull << logn, cluster, {});
                const double bg_ms = best.timeline.totalMs();
                const double dist_ms = dist.totalMs();
                const double speedup = bg_ms / dist_ms;
                row.push_back(TextTable::paperMs(bg_ms) + "^" +
                              std::to_string(best.profile->id));
                row.push_back(TextTable::paperMs(dist_ms));
                row.push_back(TextTable::num(speedup, 2) + "x");
                speedup_sum += speedup;
                ++speedup_count;
                if (gpus > 1) {
                    multi_gpu_speedup_sum += speedup;
                    ++multi_gpu_count;
                }
                peak = std::max(peak, speedup);
            }
            t.row(row);
        }
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("average DistMSM speedup over BG (all cells):   "
                "%.2fx\n",
                speedup_sum / speedup_count);
    std::printf("average DistMSM speedup over BG (multi-GPU):   "
                "%.2fx   (paper: 6.39x)\n",
                multi_gpu_speedup_sum / multi_gpu_count);
    std::printf("peak speedup: %.1fx   (paper: up to 20x, on "
                "MNT4753)\n",
                peak);
    return 0;
}
