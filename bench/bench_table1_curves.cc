/**
 * @file
 * Regenerates Table 1: scalar and point bit widths of the supported
 * elliptic curves, read back from the built field/curve parameters.
 */

#include "bench/common.h"

#include "src/ec/curves.h"

namespace distmsm {
namespace {

template <typename Curve>
void
row(TextTable &t)
{
    t.row({Curve::kName,
           std::to_string(Curve::Fr::modulus().bitLength()) + " bits",
           std::to_string(Curve::Fq::modulus().bitLength()) +
               " bits"});
}

} // namespace
} // namespace distmsm

int
main()
{
    using namespace distmsm;
    bench::banner("Table 1", "number of bits for some elliptic curves",
                  "read from the generated curve constants; paper "
                  "values: BN254 254/254, BLS12-377 253/377, "
                  "BLS12-381 255/381, MNT4753 753/753");
    TextTable t;
    t.header({"EC", "k_i (scalar)", "P_i (point)"});
    row<Bn254>(t);
    row<Bls377>(t);
    row<Bls381>(t);
    row<Mnt4753>(t);
    std::printf("%s\n", t.render().c_str());
    return 0;
}
