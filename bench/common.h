/**
 * @file
 * Shared helpers for the experiment harnesses.
 *
 * Every bench binary regenerates one table or figure of the paper.
 * Absolute times come from the calibrated simulator (see DESIGN.md);
 * the binaries print a methodology banner so logs are
 * self-describing.
 */

#ifndef DISTMSM_BENCH_COMMON_H
#define DISTMSM_BENCH_COMMON_H

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "src/gpusim/cluster.h"
#include "src/gpusim/cost_model.h"
#include "src/support/table.h"
#include "src/support/thread_pool.h"

namespace distmsm::bench {

/** The four curves of Table 1, in paper order. */
inline std::vector<gpusim::CurveProfile>
paperCurves()
{
    return {gpusim::CurveProfile::bn254(),
            gpusim::CurveProfile::bls377(),
            gpusim::CurveProfile::bls381(),
            gpusim::CurveProfile::mnt4753()};
}

/**
 * One machine-readable context line per benchmark run: experiment
 * name plus the host-parallelism configuration, so sweep logs are
 * comparable across thread counts (results themselves are
 * bit-identical by design; only wall-clock changes).
 */
inline void
jsonContext(const char *experiment)
{
    std::printf("{\"experiment\":\"%s\",\"host_threads\":%d,"
                "\"hardware_concurrency\":%u}\n",
                experiment, support::resolveHostThreads(0),
                std::thread::hardware_concurrency());
}

/** Print the experiment banner (includes the JSON context line). */
inline void
banner(const char *experiment, const char *what, const char *method)
{
    std::printf("================================================="
                "=============\n");
    std::printf("%s — %s\n", experiment, what);
    std::printf("methodology: %s\n", method);
    jsonContext(experiment);
    std::printf("================================================="
                "=============\n\n");
}

} // namespace distmsm::bench

#endif // DISTMSM_BENCH_COMMON_H
