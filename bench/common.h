/**
 * @file
 * Shared helpers for the experiment harnesses.
 *
 * Every bench binary regenerates one table or figure of the paper.
 * Absolute times come from the calibrated simulator (see DESIGN.md);
 * the binaries print a methodology banner so logs are
 * self-describing.
 */

#ifndef DISTMSM_BENCH_COMMON_H
#define DISTMSM_BENCH_COMMON_H

#include <cstdio>
#include <string>
#include <vector>

#include "src/gpusim/cluster.h"
#include "src/gpusim/cost_model.h"
#include "src/support/table.h"

namespace distmsm::bench {

/** The four curves of Table 1, in paper order. */
inline std::vector<gpusim::CurveProfile>
paperCurves()
{
    return {gpusim::CurveProfile::bn254(),
            gpusim::CurveProfile::bls377(),
            gpusim::CurveProfile::bls381(),
            gpusim::CurveProfile::mnt4753()};
}

/** Print the experiment banner. */
inline void
banner(const char *experiment, const char *what, const char *method)
{
    std::printf("================================================="
                "=============\n");
    std::printf("%s — %s\n", experiment, what);
    std::printf("methodology: %s\n", method);
    std::printf("================================================="
                "=============\n\n");
}

} // namespace distmsm::bench

#endif // DISTMSM_BENCH_COMMON_H
