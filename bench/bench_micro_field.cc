/**
 * @file
 * Microbenchmarks of the big-integer and field substrate on this
 * host: the three Montgomery variants (SOS / CIOS / FIOS) per field
 * width, plus field addition, squaring and inversion. These numbers
 * calibrate the per-operation costs behind the simulator.
 */

#include <benchmark/benchmark.h>

#include "src/field/field_params.h"
#include "src/support/prng.h"

namespace distmsm {
namespace {

template <typename P>
void
setupOperands(BigInt<P::kLimbs> &a, BigInt<P::kLimbs> &b,
              BigInt<P::kLimbs> &mod)
{
    Prng prng(0xBE7C);
    mod = BigInt<P::kLimbs>::fromLimbs(P::kModulus);
    a = BigInt<P::kLimbs>::randomBelow(prng, mod);
    b = BigInt<P::kLimbs>::randomBelow(prng, mod);
}

template <typename P>
void
BM_MontMulSOS(benchmark::State &state)
{
    BigInt<P::kLimbs> a, b, mod;
    setupOperands<P>(a, b, mod);
    for (auto _ : state) {
        a = montMulSOS(a, b, mod, P::kInv64);
        benchmark::DoNotOptimize(a);
    }
}

template <typename P>
void
BM_MontMulCIOS(benchmark::State &state)
{
    BigInt<P::kLimbs> a, b, mod;
    setupOperands<P>(a, b, mod);
    for (auto _ : state) {
        a = montMulCIOS(a, b, mod, P::kInv64);
        benchmark::DoNotOptimize(a);
    }
}

template <typename P>
void
BM_MontMulFIOS(benchmark::State &state)
{
    BigInt<P::kLimbs> a, b, mod;
    setupOperands<P>(a, b, mod);
    for (auto _ : state) {
        a = montMulFIOS(a, b, mod, P::kInv64);
        benchmark::DoNotOptimize(a);
    }
}

/** Dedicated Montgomery squaring (sqrFull + one reduce): compare
 *  against BM_MontMul* to read the sqr-vs-mul saving directly. */
template <typename P>
void
BM_MontSqr(benchmark::State &state)
{
    BigInt<P::kLimbs> a, b, mod;
    setupOperands<P>(a, b, mod);
    for (auto _ : state) {
        a = montSqr(a, mod, P::kInv64);
        benchmark::DoNotOptimize(a);
    }
}

template <typename P>
void
BM_FieldAdd(benchmark::State &state)
{
    Prng prng(0xADD);
    auto a = Fp<P>::random(prng);
    const auto b = Fp<P>::random(prng);
    for (auto _ : state) {
        a += b;
        benchmark::DoNotOptimize(a);
    }
}

template <typename P>
void
BM_FieldSqr(benchmark::State &state)
{
    Prng prng(0x5A);
    auto a = Fp<P>::random(prng);
    for (auto _ : state) {
        a = a.sqr();
        benchmark::DoNotOptimize(a);
    }
}

template <typename P>
void
BM_FieldInverse(benchmark::State &state)
{
    Prng prng(0x1F);
    auto a = Fp<P>::random(prng);
    for (auto _ : state) {
        a = a.inverse();
        benchmark::DoNotOptimize(a);
    }
}

#define DISTMSM_FIELD_BENCH(P)                                       \
    BENCHMARK(BM_MontMulSOS<P>);                                     \
    BENCHMARK(BM_MontMulCIOS<P>);                                    \
    BENCHMARK(BM_MontMulFIOS<P>);                                    \
    BENCHMARK(BM_MontSqr<P>);                                        \
    BENCHMARK(BM_FieldAdd<P>);                                       \
    BENCHMARK(BM_FieldSqr<P>);                                       \
    BENCHMARK(BM_FieldInverse<P>)

DISTMSM_FIELD_BENCH(Bn254FqParams);
DISTMSM_FIELD_BENCH(Bls377FqParams);
DISTMSM_FIELD_BENCH(Bls381FqParams);
DISTMSM_FIELD_BENCH(Mnt4753FqParams);

} // namespace
} // namespace distmsm

BENCHMARK_MAIN();
