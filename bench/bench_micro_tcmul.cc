/**
 * @file
 * Microbenchmarks of the tensor-core Montgomery model: the
 * digit-matrix wide product against the limb schoolbook product, and
 * the full TC Montgomery multiply against CIOS. On a CPU the TC path
 * is of course slower — it is a functional model of the data path —
 * but the numbers document the modelled arithmetic blow-up
 * (64 byte-MACs per 64-bit MAC) that the 8x tensor throughput and
 * the compaction have to beat on a real GPU.
 */

#include <benchmark/benchmark.h>

#include "src/field/field_params.h"
#include "src/support/prng.h"
#include "src/tcmul/mont_tc.h"

namespace distmsm::tcmul {
namespace {

template <typename P>
void
BM_WideProductSchoolbook(benchmark::State &state)
{
    Prng prng(0x73);
    const auto mod = BigInt<P::kLimbs>::fromLimbs(P::kModulus);
    auto m = BigInt<P::kLimbs>::randomBelow(prng, mod);
    for (auto _ : state) {
        auto wide = mulFull(m, mod);
        benchmark::DoNotOptimize(wide);
    }
}

template <typename P>
void
BM_WideProductTensorPath(benchmark::State &state)
{
    Prng prng(0x74);
    const auto mod = BigInt<P::kLimbs>::fromLimbs(P::kModulus);
    const TcMontgomeryContext<P::kLimbs> ctx(mod, P::kInv64);
    auto m = BigInt<P::kLimbs>::randomBelow(prng, mod);
    for (auto _ : state) {
        auto wide = ctx.wideProduct(m);
        benchmark::DoNotOptimize(wide);
    }
}

template <typename P>
void
BM_MontMulTC(benchmark::State &state)
{
    Prng prng(0x75);
    const auto mod = BigInt<P::kLimbs>::fromLimbs(P::kModulus);
    const TcMontgomeryContext<P::kLimbs> ctx(mod, P::kInv64);
    auto a = BigInt<P::kLimbs>::randomBelow(prng, mod);
    const auto b = BigInt<P::kLimbs>::randomBelow(prng, mod);
    for (auto _ : state) {
        a = montMulTC(a, b, ctx);
        benchmark::DoNotOptimize(a);
    }
}

template <typename P>
void
BM_MontMulCIOSRef(benchmark::State &state)
{
    Prng prng(0x76);
    const auto mod = BigInt<P::kLimbs>::fromLimbs(P::kModulus);
    auto a = BigInt<P::kLimbs>::randomBelow(prng, mod);
    const auto b = BigInt<P::kLimbs>::randomBelow(prng, mod);
    for (auto _ : state) {
        a = montMulCIOS(a, b, mod, P::kInv64);
        benchmark::DoNotOptimize(a);
    }
}

BENCHMARK(BM_WideProductSchoolbook<Bn254FqParams>);
BENCHMARK(BM_WideProductTensorPath<Bn254FqParams>);
BENCHMARK(BM_MontMulTC<Bn254FqParams>);
BENCHMARK(BM_MontMulCIOSRef<Bn254FqParams>);
BENCHMARK(BM_WideProductSchoolbook<Mnt4753FqParams>);
BENCHMARK(BM_WideProductTensorPath<Mnt4753FqParams>);
BENCHMARK(BM_MontMulTC<Mnt4753FqParams>);
BENCHMARK(BM_MontMulCIOSRef<Mnt4753FqParams>);

} // namespace
} // namespace distmsm::tcmul

BENCHMARK_MAIN();
