/**
 * @file
 * Microbenchmarks of the NTT over BN254's scalar field: forward
 * transform across sizes, and the Groth16 quotient computation.
 */

#include <benchmark/benchmark.h>

#include "src/field/field_params.h"
#include "src/ntt/ntt.h"
#include "src/support/prng.h"
#include "src/zksnark/qap.h"
#include "src/zksnark/workloads.h"

namespace distmsm {
namespace {

void
BM_NttForward(benchmark::State &state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const ntt::EvaluationDomain<Bn254Fr> domain(n);
    Prng prng(0x177);
    std::vector<Bn254Fr> v(n);
    for (auto &x : v)
        x = Bn254Fr::random(prng);
    for (auto _ : state) {
        domain.forward(v);
        benchmark::DoNotOptimize(v.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_NttForward)
    ->Arg(1 << 8)
    ->Arg(1 << 12)
    ->Arg(1 << 16)
    ->Unit(benchmark::kMillisecond);

void
BM_QuotientH(benchmark::State &state)
{
    Prng prng(0x9A9);
    const auto built = zksnark::buildMulChainCircuit<Bn254Fr>(
        static_cast<std::size_t>(state.range(0)), 4, prng);
    for (auto _ : state) {
        auto h = zksnark::computeQuotientH(built.r1cs, built.wires);
        benchmark::DoNotOptimize(h.data());
    }
}
BENCHMARK(BM_QuotientH)
    ->Arg(1 << 8)
    ->Arg(1 << 10)
    ->Unit(benchmark::kMillisecond);

} // namespace
} // namespace distmsm

BENCHMARK_MAIN();
