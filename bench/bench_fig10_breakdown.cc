/**
 * @file
 * Regenerates Figure 10: breakdown of DistMSM's two optimization
 * families. Starting from NO-OPT (single-GPU-design Pippenger with
 * the unoptimized PADD kernel), it reports the speedup of adopting
 * (a) only the multi-GPU Pippenger algorithm, (b) only the PADD
 * kernel optimizations, the product of the two ("calculated") and
 * the measured speedup with both ("overall") — exhibiting the
 * paper's synergy: overall exceeds the product because the multi-GPU
 * algorithm turns most EC work into PACC-type accumulation.
 */

#include "bench/common.h"

#include "src/msm/planner.h"

int
main()
{
    using namespace distmsm;
    using gpusim::Cluster;
    using gpusim::DeviceSpec;
    using gpusim::EcKernelVariant;
    bench::banner(
        "Figure 10", "breakdown of DistMSM's optimizations",
        "simulated BLS12-381, N = 2^26; NO-OPT = single-GPU "
        "Pippenger design + unoptimized kernel, scaled by N-dim "
        "splitting");

    const auto curve = gpusim::CurveProfile::bls381();
    constexpr std::uint64_t kN = 1ull << 26;

    TextTable t;
    t.header({"GPUs", "multi-GPU alg", "PADD opts", "calculated",
              "overall"});
    for (int gpus : {2, 4, 8, 16, 32}) {
        const Cluster cluster(DeviceSpec::a100(), gpus);

        // NO-OPT: the rigid single-GPU design with baseline kernel.
        const double no_opt =
            msm::estimateNdimBaseline(curve, kN, cluster,
                                      EcKernelVariant::baseline(), 0,
                                      /*rigid=*/true)
                .totalMs();
        // Multi-GPU Pippenger only (baseline kernel).
        msm::MsmOptions alg_only;
        alg_only.kernel = EcKernelVariant::baseline();
        const double alg =
            msm::estimateDistMsm(curve, kN, cluster, alg_only)
                .totalMs();
        // Kernel optimizations only (single-GPU design).
        const double kernel_only =
            msm::estimateNdimBaseline(curve, kN, cluster,
                                      EcKernelVariant::full(), 0,
                                      /*rigid=*/true)
                .totalMs();
        // Both (DistMSM).
        const double overall =
            msm::estimateDistMsm(curve, kN, cluster, {}).totalMs();

        const double s_alg = no_opt / alg;
        const double s_kernel = no_opt / kernel_only;
        const double s_overall = no_opt / overall;
        t.row({std::to_string(gpus),
               TextTable::num(s_alg, 2) + "x",
               TextTable::num(s_kernel, 2) + "x",
               TextTable::num(s_alg * s_kernel, 2) + "x",
               TextTable::num(s_overall, 2) + "x"});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("paper: the multi-GPU algorithm's gains grow with "
                "GPU count; the PADD-optimization gain shrinks for "
                "NO-OPT (bucket-reduce, which is not PACC, "
                "dominates), and the overall speedup exceeds the "
                "calculated product — the synergy of Section "
                "5.3.1.\n");
    return 0;
}
