/**
 * @file
 * Regenerates Figure 8: speedup of multi-GPU configurations over a
 * single GPU, for DistMSM and every baseline, averaged across the
 * curves each implementation supports (N = 2^26), plus the paper's
 * near-linear data point at N = 2^28.
 */

#include "bench/common.h"

#include <cmath>

#include "src/msm/baseline_profiles.h"
#include "src/msm/planner.h"

int
main()
{
    using namespace distmsm;
    using gpusim::Cluster;
    using gpusim::DeviceSpec;
    bench::banner(
        "Figure 8", "speedup of multi-GPUs over single GPU",
        "per-method simulated time at N = 2^26 averaged over the "
        "supported curves; DistMSM additionally shown at N = 2^28");

    const std::vector<int> gpu_counts = {1, 2, 4, 8, 16, 32};
    TextTable t;
    {
        std::vector<std::string> header = {"Method"};
        for (int g : gpu_counts)
            header.push_back(std::to_string(g) + " GPU(s)");
        t.header(header);
    }

    const auto curves = bench::paperCurves();
    constexpr std::uint64_t kN = 1ull << 26;

    auto geo_mean_speedup = [&](auto &&time_fn) {
        std::vector<std::string> cells;
        std::vector<double> base;
        for (int g : gpu_counts) {
            double log_sum = 0.0;
            int count = 0;
            for (std::size_t c = 0; c < curves.size(); ++c) {
                const double ms = time_fn(curves[c], g);
                if (ms <= 0)
                    continue;
                if (g == 1) {
                    base.push_back(ms);
                    log_sum += 0.0;
                } else {
                    log_sum += std::log(base[count] / ms);
                }
                ++count;
            }
            if (count == 0) {
                cells.push_back("-");
            } else {
                cells.push_back(TextTable::num(
                                    std::exp(log_sum / count), 2) +
                                "x");
            }
        }
        return cells;
    };

    for (const auto &profile : msm::allBaselines()) {
        auto cells = geo_mean_speedup(
            [&](const gpusim::CurveProfile &curve, int gpus) {
                if (!profile.supports(curve))
                    return -1.0;
                const Cluster cluster(DeviceSpec::a100(), gpus);
                return profile.estimate(curve, kN, cluster).totalMs();
            });
        cells.insert(cells.begin(), profile.name);
        t.row(cells);
    }
    {
        auto cells = geo_mean_speedup(
            [&](const gpusim::CurveProfile &curve, int gpus) {
                const Cluster cluster(DeviceSpec::a100(), gpus);
                return msm::estimateDistMsm(curve, kN, cluster, {})
                    .totalMs();
            });
        cells.insert(cells.begin(), "DistMSM");
        t.row(cells);
    }
    std::printf("%s\n", t.render().c_str());

    // The paper's near-linear data point.
    const auto curve = gpusim::CurveProfile::bls377();
    const double t1 =
        msm::estimateDistMsm(curve, 1ull << 28,
                             Cluster(DeviceSpec::a100(), 1), {})
            .totalMs();
    const double t32 =
        msm::estimateDistMsm(curve, 1ull << 28,
                             Cluster(DeviceSpec::a100(), 32), {})
            .totalMs();
    std::printf("DistMSM at N = 2^28 (BLS12-377): 32-GPU speedup "
                "%.1fx over 1 GPU   (paper: 31x)\n",
                t1 / t32);
    std::printf("paper: best baseline reaches 7.18x at 8 GPUs; "
                "DistMSM 7.94x; Yrrid scales least effectively.\n");
    return 0;
}
