/**
 * @file
 * Regenerates Figure 11: execution time of the bucket-scatter step,
 * naive vs three-level hierarchical (Algorithm 3), for window sizes
 * 6..24.
 *
 * Methodology: the kernels execute functionally on the simulator
 * at N = 2^20 (verifying identical bucket contents and measuring
 * contention — the test suite asserts the analytic statistics match
 * those measurements), then the analytic statistics at the paper's
 * N = 2^26 feed the A100 cost model. Window sizes above 14 exceed
 * shared memory for the hierarchical kernel, as in the paper.
 */

#include "bench/common.h"

#include "src/msm/planner.h"
#include "src/msm/scatter.h"
#include "src/support/prng.h"

int
main()
{
    using namespace distmsm;
    using gpusim::CostModel;
    using gpusim::DeviceSpec;
    bench::banner(
        "Figure 11", "execution time of the bucket-scatter step",
        "functional kernels at N = 2^20 with measured contention, "
        "scaled to N = 2^26 via the A100 cost model");

    constexpr std::uint64_t kFunctionalN = 1ull << 20;
    constexpr std::uint64_t kPaperN = 1ull << 26;
    const CostModel model(DeviceSpec::a100());

    // All resident threads of the device collaborate, as in the
    // paper's kernels (N_T ~ 2^16 and above).
    msm::ScatterConfig config;
    config.blockDim = 1024;
    config.gridDim = 216;
    config.sharedBytesPerBlock = 160 * 1024;
    const int threads = config.blockDim * config.gridDim;

    Prng prng(0xF16);
    std::vector<std::uint32_t> raw(kFunctionalN);
    for (auto &v : raw)
        v = static_cast<std::uint32_t>(prng());

    TextTable t;
    t.header({"s", "naive (ms)", "hierarchical (ms)", "speedup"});
    double s11_speedup = 0, s9_speedup = 0;
    for (unsigned s = 6; s <= 24; ++s) {
        std::vector<std::uint32_t> ids(raw.size());
        for (std::size_t i = 0; i < raw.size(); ++i)
            ids[i] = raw[i] & ((1u << s) - 1);

        auto time_ms = [&](bool hierarchical) {
            const auto stats = msm::synthesizeScatterStats(
                hierarchical, kPaperN, s, config);
            return (model.scatterComputeNs(kPaperN, threads) +
                    model.atomicNs(stats, threads) +
                    model.gmemNs(stats.gmemBytes)) /
                   1e6;
        };

        // Functional cross-check at reduced N: both kernels must
        // produce identical bucket contents.
        const auto naive = msm::naiveScatter(ids, s, config);
        const double naive_ms = time_ms(false);
        const auto hier = msm::hierarchicalScatter(ids, s, config);
        if (hier.ok) {
            std::uint64_t naive_sz = 0, hier_sz = 0;
            for (const auto &bkt : naive.buckets)
                naive_sz += bkt.size();
            for (const auto &bkt : hier.buckets)
                hier_sz += bkt.size();
            if (naive_sz != hier_sz) {
                std::printf("FUNCTIONAL MISMATCH at s=%u\n", s);
                return 1;
            }
        }
        std::string hier_cell = "FAIL (shared memory)";
        std::string speedup_cell = "-";
        if (hier.ok) {
            const double hier_ms = time_ms(true);
            hier_cell = TextTable::num(hier_ms, 3);
            const double speedup = naive_ms / hier_ms;
            speedup_cell = TextTable::num(speedup, 2) + "x";
            if (s == 11)
                s11_speedup = speedup;
            if (s == 9)
                s9_speedup = speedup;
        }
        t.row({std::to_string(s), TextTable::num(naive_ms, 3),
               hier_cell, speedup_cell});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("hierarchical speedup at s = 11: %.2fx   (paper: "
                "6.71x)\n",
                s11_speedup);
    std::printf("hierarchical speedup at s = 9:  %.2fx   (paper: "
                "18.3x)\n",
                s9_speedup);
    std::printf("paper: for the large windows a single GPU prefers "
                "(s ~ 20) the naive method wins; s > 14 fails in "
                "shared memory.\n");
    return 0;
}
