/**
 * @file
 * Regenerates Table 4: end-to-end zkSNARK proof generation for the
 * three applications (BN254, R1CS), libsnark CPU vs DistMSM on an
 * 8-GPU node.
 *
 * Two parts:
 *  1. the paper-scale table, composed from the measured CPU times,
 *     the stage fractions (MSM 78.2%, NTT 17.9%, others 3.9%) and
 *     this library's simulated MSM/NTT accelerations — the same
 *     Amdahl composition the paper's Section 5.1.1 uses;
 *  2. a functional cross-check: the real Groth16 prover of this
 *     library runs on a scaled-down instance and reports its own
 *     stage split, confirming MSM dominates CPU proving.
 */

#include "bench/common.h"

#include "src/ec/curves.h"
#include "src/msm/planner.h"
#include "src/zksnark/groth16.h"
#include "src/zksnark/workloads.h"

int
main()
{
    using namespace distmsm;
    using gpusim::Cluster;
    using gpusim::DeviceSpec;
    namespace zk = zksnark;
    bench::banner(
        "Table 4", "end-to-end zkSNARK proving time (seconds)",
        "stage composition (Section 5.1.1) with simulated 8-GPU MSM "
        "acceleration; plus a functional prover cross-check");

    // MSM acceleration: CPU MSM vs DistMSM on 8 GPUs, per workload
    // size; NTT stays single-GPU (the paper pairs with Sppark NTT at
    // ~898x over the CPU).
    const auto curve = gpusim::CurveProfile::bn254();
    const Cluster node(DeviceSpec::a100(), 8);
    const zk::StageFractions fractions;
    constexpr double kNttGpuSpeedup = 898.0;

    TextTable t;
    t.header({"Application", "Size", "libsnark", "DistMSM",
              "speedup", "paper"});
    for (const auto &spec : zk::table4Workloads()) {
        // Proving needs several MSMs of ~`constraints` points; the
        // acceleration ratio is size-dependent through the model.
        std::uint64_t n = 1;
        while (n < spec.constraints)
            n <<= 1;
        const double gpu_ms =
            msm::estimateDistMsm(curve, n, node, {}).totalMs();
        // The CPU prover runs the full serial Pippenger:
        // ~ceil(lambda/s) * (N + 2^s) point additions at s = 16.
        const std::uint64_t cpu_ops =
            msm::windowCount(curve.scalarBits, 16) *
            (n + (1ull << 16));
        const double cpu_ms =
            node.model().hostEcNs(curve, cpu_ops, node.host()) / 1e6;
        const double msm_speedup = cpu_ms / gpu_ms;

        const double dist_seconds =
            spec.libsnarkSeconds *
            (fractions.msm / msm_speedup +
             fractions.ntt / kNttGpuSpeedup + fractions.others);
        t.row({spec.name, std::to_string(spec.constraints),
               TextTable::num(spec.libsnarkSeconds, 1),
               TextTable::num(dist_seconds, 1),
               TextTable::num(spec.libsnarkSeconds / dist_seconds,
                              1) +
                   "x",
               TextTable::num(spec.libsnarkSeconds /
                                  spec.paperDistMsmSeconds,
                              1) +
                   "x"});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("paper: average end-to-end speedup 25.5x "
                "(Amdahl bound 25.6x with 'others' on the CPU).\n\n");

    // ---- Functional cross-check on this host ----
    std::printf("functional prover cross-check (scaled-down "
                "instance, this host):\n");
    Prng prng(0x7AB1E4);
    const std::size_t constraints = 512;
    auto built =
        zk::buildMulChainCircuit<Bn254Fr>(constraints, 4, prng);
    const auto trapdoor = zk::Trapdoor<Bn254Fr>::random(prng);
    const auto keys = zk::setup<Bn254>(built.r1cs, trapdoor);
    zk::ProverTiming timing;
    const auto proof = zk::prove<Bn254>(keys.pk, built.r1cs,
                                        built.wires, prng, &timing);
    const std::vector<Bn254Fr> public_inputs(
        built.wires.begin() + 1,
        built.wires.begin() + 1 + built.r1cs.numPublic());
    const bool ok = zk::verify<Bn254>(keys.vk, proof, public_inputs);
    const double total = timing.totalSeconds();
    std::printf("  constraints: %zu (domain %zu), MSM points: %zu\n",
                constraints, timing.domainSize, timing.msmPoints);
    std::printf("  stage split: MSM %.1f%%  NTT %.1f%%  others "
                "%.1f%%   (paper CPU split: 78.2 / 17.9 / 3.9)\n",
                100 * timing.msmSeconds / total,
                100 * timing.nttSeconds / total,
                100 * timing.otherSeconds / total);
    std::printf("  proof verified by trapdoor oracle: %s\n",
                ok ? "yes" : "NO");
    return ok ? 0 : 1;
}
