/**
 * @file
 * Ablation study of DistMSM's design choices (beyond the paper's
 * figures): each row disables or changes exactly one knob of the
 * full configuration and reports the simulated impact at three
 * cluster scales, for BLS12-381 at N = 2^26.
 *
 * Complements Figures 10-12: those isolate the paper's two
 * optimization families; this sweeps every planner/runtime decision
 * the library exposes, including the extensions (signed digits,
 * precomputation, pipelining).
 */

#include "bench/common.h"

#include "src/msm/pipeline.h"
#include "src/msm/planner.h"

int
main()
{
    using namespace distmsm;
    using gpusim::Cluster;
    using gpusim::DeviceSpec;
    bench::banner(
        "Ablation", "one-knob ablations of the DistMSM design",
        "simulated BLS12-381, N = 2^26; every row changes exactly "
        "one option relative to the full configuration");

    const auto curve = gpusim::CurveProfile::bls381();
    constexpr std::uint64_t kN = 1ull << 26;
    const std::vector<int> gpu_counts = {1, 8, 32};

    struct Row
    {
        const char *name;
        msm::MsmOptions options;
    };
    std::vector<Row> rows;
    rows.push_back({"full configuration", {}});
    {
        // The scatter and reduce knobs only matter in the
        // small-window multi-GPU regime; pin s = 11 (Figure 11's
        // setting) for those comparisons.
        msm::MsmOptions o;
        o.windowBitsOverride = 11;
        rows.push_back({"s pinned to 11 (base)", o});
        o.hierarchicalScatter = false;
        rows.push_back({"s=11, naive scatter", o});
    }
    {
        msm::MsmOptions o;
        o.windowBitsOverride = 11;
        o.cpuBucketReduce = false;
        rows.push_back({"s=11, GPU bucket-reduce", o});
    }
    {
        msm::MsmOptions o;
        o.windowBitsOverride = 11;
        o.overlapReduce = false;
        rows.push_back({"s=11, no reduce overlap", o});
    }
    {
        msm::MsmOptions o;
        o.kernel = gpusim::EcKernelVariant{true, true, true, false,
                                           false};
        rows.push_back({"- no tensor cores", o});
    }
    {
        msm::MsmOptions o;
        o.kernel = gpusim::EcKernelVariant::baseline();
        rows.push_back({"- unoptimized kernel", o});
    }
    {
        msm::MsmOptions o;
        o.signedDigits = true;
        rows.push_back({"+ signed digits", o});
    }
    {
        msm::MsmOptions o;
        o.glv = true;
        rows.push_back({"+ GLV decomposition", o});
    }
    {
        msm::MsmOptions o;
        o.batchAffine = true;
        rows.push_back({"+ batched-affine acc", o});
    }
    {
        msm::MsmOptions o;
        o.glv = true;
        o.batchAffine = true;
        o.signedDigits = true;
        rows.push_back({"+ GLV + batch + signed", o});
    }
    {
        msm::MsmOptions o;
        o.precompute = true;
        rows.push_back({"+ fixed-base precompute", o});
    }
    {
        msm::MsmOptions o;
        o.glv = true;
        o.batchAffine = true;
        o.precompute = true;
        rows.push_back({"+ GLV + batch + precomp", o});
    }
    {
        msm::MsmOptions o;
        o.windowBitsOverride = 20;
        rows.push_back({"s pinned to 20", o});
    }

    TextTable t;
    {
        std::vector<std::string> header = {"configuration"};
        for (int g : gpu_counts)
            header.push_back(std::to_string(g) + " GPU(s), ms");
        header.push_back("vs full (8)");
        t.header(header);
    }
    double full_8_ms = 0.0;
    for (const auto &row : rows) {
        std::vector<std::string> cells = {row.name};
        double this_8_ms = 0.0;
        for (int gpus : gpu_counts) {
            const Cluster cluster(DeviceSpec::a100(), gpus);
            const double ms =
                msm::estimateDistMsm(curve, kN, cluster,
                                     row.options)
                    .totalMs();
            if (gpus == 8)
                this_8_ms = ms;
            cells.push_back(TextTable::num(ms, 2));
        }
        if (full_8_ms == 0.0)
            full_8_ms = this_8_ms;
        cells.push_back(TextTable::num(this_8_ms / full_8_ms, 2) +
                        "x");
        t.row(cells);
    }
    std::printf("%s\n", t.render().c_str());

    // Pipelining ablation: the Section 3.2.3 overlap across a
    // proof's four MSMs.
    const Cluster node(DeviceSpec::a100(), 8);
    {
        msm::MsmOptions pre;
        pre.glv = true;
        pre.batchAffine = true;
        pre.precompute = true;
        const auto pre_plan = msm::planMsm(curve, kN, node, pre);
        if (pre_plan.precompute) {
            const auto pre_t =
                msm::estimateDistMsm(curve, kN, node, pre);
            std::printf(
                "fixed-base table build (one-time, amortized by "
                "BaseTableCache; excluded above): %.2f ms for "
                "%.1f GiB of tables\n",
                pre_t.tableBuildNs / 1e6,
                pre_plan.tableBytes / (1024.0 * 1024 * 1024));
        } else {
            // At paper scale the table cannot fit: the precompute
            // rows above fell back to the per-window path by design.
            std::printf(
                "fixed-base precompute declined by the planner at "
                "N = 2^26 (table exceeds the %.0f GiB device "
                "budget); the precompute rows above ran the "
                "per-window fallback. See BENCH_msm.json for "
                "proving-key-scale rows where the table fits.\n",
                node.device().globalMemBytes / 2.0 /
                    (1024.0 * 1024 * 1024));
        }
    }
    msm::MsmOptions pipe_options;
    pipe_options.windowBitsOverride = 11; // CPU reduce engaged
    const auto pipe = msm::estimateProvingPipeline(curve, kN, node,
                                                   pipe_options, 4);
    std::printf("four pipelined MSMs: %.2f ms pipelined vs %.2f ms "
                "serial (%.1f%% of host reduce hidden)\n",
                pipe.pipelinedNs / 1e6, pipe.serialNs / 1e6,
                100 * pipe.hiddenFraction());
    return 0;
}
