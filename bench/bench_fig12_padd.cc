/**
 * @file
 * Regenerates Figure 12: performance breakdown of the PADD kernel
 * optimizations (Section 4) on the A100 model, per curve. Each
 * optimization is added incrementally and the cumulative speedup
 * over the unoptimized kernel is reported, exactly as in the paper:
 * PADD->PACC, optimal execution order, explicit spilling, Montgomery
 * multiplication on tensor cores, and on-the-fly compaction.
 */

#include "bench/common.h"

#include "src/gpusim/cost_model.h"

int
main()
{
    using namespace distmsm;
    using gpusim::CostModel;
    using gpusim::DeviceSpec;
    using gpusim::EcKernelVariant;
    using gpusim::EcOp;
    bench::banner(
        "Figure 12", "performance breakdown of PADD optimizations",
        "A100 kernel model (registers from src/sched schedules, "
        "occupancy from the device model), cumulative speedups over "
        "the unoptimized accumulation kernel");

    const CostModel model(DeviceSpec::a100());
    constexpr std::uint64_t kOps = 1 << 22;

    struct Step
    {
        const char *name;
        EcKernelVariant variant;
    };
    const std::vector<Step> steps = {
        {"PADD->PACC", {true, false, false, false, false}},
        {"Optimal Exec Order", {true, true, false, false, false}},
        {"Explicit Spill", {true, true, true, false, false}},
        {"MontMul with TC", {true, true, true, true, false}},
        {"On-the-fly Compact", {true, true, true, true, true}},
    };

    TextTable t;
    {
        std::vector<std::string> header = {"Curve"};
        for (const auto &s : steps)
            header.push_back(s.name);
        t.header(header);
    }
    for (const auto &curve : bench::paperCurves()) {
        const double base = model.ecThroughputNs(
            curve, EcKernelVariant::baseline(), EcOp::Pacc, kOps);
        std::vector<std::string> row = {curve.name};
        for (const auto &step : steps) {
            const double ns = model.ecThroughputNs(
                curve, step.variant, EcOp::Pacc, kOps);
            row.push_back(TextTable::num(base / ns, 2) + "x");
        }
        t.row(row);
    }
    std::printf("%s\n", t.render().c_str());

    // Register-pressure view behind the speedups.
    TextTable regs;
    regs.header({"Curve", "baseline regs", "optimal regs",
                 "spilled regs", "occupancy gain"});
    for (const auto &curve : bench::paperCurves()) {
        const EcKernelVariant base = EcKernelVariant::baseline();
        const EcKernelVariant opt{true, true, false, false, false};
        const EcKernelVariant spill{true, true, true, false, false};
        regs.row({curve.name,
                  std::to_string(model.regsPerThread(curve, base,
                                                     EcOp::Pacc)),
                  std::to_string(model.regsPerThread(curve, opt,
                                                     EcOp::Pacc)),
                  std::to_string(model.regsPerThread(curve, spill,
                                                     EcOp::Pacc)),
                  TextTable::num(
                      model.kernelOccupancy(curve, spill,
                                            EcOp::Pacc) /
                          model.kernelOccupancy(curve, base,
                                                EcOp::Pacc),
                      2) + "x"});
    }
    std::printf("%s\n", regs.render().c_str());
    std::printf("paper: cumulative speedup 1.94x on MNT4753 and "
                "~1.61x on the other curves; direct TC deployment "
                "alone is a 6.8%% slowdown, compaction recovers "
                "+5.2%% on the 25x-bit curves but leaves MNT4753 "
                "8.2%% behind its no-TC configuration.\n");
    return 0;
}
