/**
 * @file
 * Microbenchmarks of elliptic-curve arithmetic on this host: PADD,
 * the dedicated PACC kernel (Algorithm 4), PDBL and scalar
 * multiplication, per curve. The PACC/PADD ratio should track the
 * 10/14 modular-multiplication counts of Section 4.1.
 */

#include <benchmark/benchmark.h>

#include "src/ec/bn254_g2.h"
#include "src/ec/curves.h"
#include "src/support/prng.h"

namespace distmsm {
namespace {

template <typename Curve>
XYZZPoint<Curve>
somePoint(std::uint64_t k)
{
    return pmul(XYZZPoint<Curve>::fromAffine(Curve::generator()),
                BigInt<1>::fromU64(k));
}

template <typename Curve>
void
BM_Padd(benchmark::State &state)
{
    auto p = somePoint<Curve>(12345);
    const auto q = somePoint<Curve>(67890);
    for (auto _ : state) {
        p = padd(p, q);
        benchmark::DoNotOptimize(p);
    }
}

template <typename Curve>
void
BM_Pacc(benchmark::State &state)
{
    auto acc = somePoint<Curve>(12345);
    const auto p = somePoint<Curve>(67890).toAffine();
    for (auto _ : state) {
        acc = pacc(acc, p);
        benchmark::DoNotOptimize(acc);
    }
}

template <typename Curve>
void
BM_Pdbl(benchmark::State &state)
{
    auto p = somePoint<Curve>(12345);
    for (auto _ : state) {
        p = pdbl(p);
        benchmark::DoNotOptimize(p);
    }
}

template <typename Curve>
void
BM_Pmul(benchmark::State &state)
{
    Prng prng(0x31);
    const auto p = somePoint<Curve>(7);
    auto k = BigInt<Curve::Fr::kLimbs>::random(prng);
    k.truncateToBits(Curve::kScalarBits);
    for (auto _ : state) {
        auto r = pmul(p, k);
        benchmark::DoNotOptimize(r);
    }
}

#define DISTMSM_EC_BENCH(Curve)                                      \
    BENCHMARK(BM_Padd<Curve>);                                       \
    BENCHMARK(BM_Pacc<Curve>);                                       \
    BENCHMARK(BM_Pdbl<Curve>);                                       \
    BENCHMARK(BM_Pmul<Curve>)

DISTMSM_EC_BENCH(Bn254);
DISTMSM_EC_BENCH(Bls377);
DISTMSM_EC_BENCH(Bls381);
DISTMSM_EC_BENCH(Mnt4753);
DISTMSM_EC_BENCH(Bn254G2);

} // namespace
} // namespace distmsm

BENCHMARK_MAIN();
