/**
 * @file
 * Microbenchmarks of the MSM implementations on this host: serial
 * Pippenger across window sizes and input sizes (BN254), and the
 * functional DistMSM execution (simulator overhead included).
 */

#include <benchmark/benchmark.h>

#include <map>

#include "src/ec/curves.h"
#include "src/msm/distmsm.h"
#include "src/msm/workload.h"

namespace distmsm::msm {
namespace {

struct Inputs
{
    std::vector<AffinePoint<Bn254>> points;
    std::vector<BigInt<4>> scalars;
};

const Inputs &
inputs(std::size_t n)
{
    static std::map<std::size_t, Inputs> cache;
    auto it = cache.find(n);
    if (it == cache.end()) {
        Prng prng(0xB127 + n);
        Inputs in;
        in.points = generatePoints<Bn254>(n, prng);
        in.scalars = generateScalars<Bn254>(n, prng);
        it = cache.emplace(n, std::move(in)).first;
    }
    return it->second;
}

void
BM_SerialPippenger(benchmark::State &state)
{
    const auto &in = inputs(static_cast<std::size_t>(state.range(0)));
    const unsigned s = static_cast<unsigned>(state.range(1));
    for (auto _ : state) {
        auto r = msmSerialPippenger<Bn254>(in.points, in.scalars, s);
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SerialPippenger)
    ->Args({1 << 10, 4})
    ->Args({1 << 10, 8})
    ->Args({1 << 10, 12})
    ->Args({1 << 12, 8})
    ->Args({1 << 14, 8})
    ->Unit(benchmark::kMillisecond);

void
BM_FunctionalDistMsm(benchmark::State &state)
{
    const auto &in = inputs(static_cast<std::size_t>(state.range(0)));
    const gpusim::Cluster cluster(gpusim::DeviceSpec::a100(),
                                  static_cast<int>(state.range(1)));
    MsmOptions options;
    options.windowBitsOverride = 8;
    options.scatter.blockDim = 256;
    options.scatter.gridDim = 8;
    for (auto _ : state) {
        auto r = computeDistMsm<Bn254>(in.points, in.scalars,
                                       cluster, options);
        benchmark::DoNotOptimize(r.value);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FunctionalDistMsm)
    ->Args({1 << 10, 1})
    ->Args({1 << 10, 8})
    ->Args({1 << 12, 8})
    ->Unit(benchmark::kMillisecond);

/**
 * Engine hot path at fixed geometry: the BENCH_msm.json acceptance
 * rows. The engine (plan, phi points, precompute tables) is built
 * outside the timing loop, the way a prover reusing a fixed point
 * vector runs; flags toggle the GLV decomposition and batched-affine
 * accumulation. s = 13 keeps the hierarchical scatter feasible
 * (s > 14 exceeds shared memory) while staying near the 2^18 optimum.
 */
void
engineHotPath(benchmark::State &state, bool glv, bool batch_affine)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto &in = inputs(n);
    const gpusim::Cluster cluster(gpusim::DeviceSpec::a100(), 8);
    MsmOptions options;
    options.windowBitsOverride = 13;
    options.signedDigits = true;
    options.glv = glv;
    options.batchAffine = batch_affine;
    const MsmEngine<Bn254> engine(in.points, cluster, options);
    for (auto _ : state) {
        auto r = engine.compute(in.scalars);
        benchmark::DoNotOptimize(r.value);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}

void
BM_EngineMsmLegacy(benchmark::State &state)
{
    engineHotPath(state, false, false);
}
BENCHMARK(BM_EngineMsmLegacy)
    ->Arg(1 << 14)
    ->Arg(1 << 18)
    ->Unit(benchmark::kMillisecond);

void
BM_EngineMsmGlv(benchmark::State &state)
{
    engineHotPath(state, true, false);
}
BENCHMARK(BM_EngineMsmGlv)
    ->Arg(1 << 14)
    ->Arg(1 << 18)
    ->Unit(benchmark::kMillisecond);

void
BM_EngineMsmBatchAffine(benchmark::State &state)
{
    engineHotPath(state, false, true);
}
BENCHMARK(BM_EngineMsmBatchAffine)
    ->Arg(1 << 14)
    ->Arg(1 << 18)
    ->Unit(benchmark::kMillisecond);

void
BM_EngineMsmGlvBatchAffine(benchmark::State &state)
{
    engineHotPath(state, true, true);
}
BENCHMARK(BM_EngineMsmGlvBatchAffine)
    ->Arg(1 << 14)
    ->Arg(1 << 18)
    ->Unit(benchmark::kMillisecond);

/**
 * Precompute geometry for the fixed-base rows: the combined bucket
 * pass makes one scatter over W*n elements and skips the Horner
 * doubling chain entirely, so the optimal window is wider than the
 * per-window engine's. s = 16 needs the naive scatter (hierarchical
 * shared-memory staging is infeasible past s = 14).
 */
MsmOptions
precomputeOptions()
{
    MsmOptions options;
    options.windowBitsOverride = 16;
    options.signedDigits = false;
    options.hierarchicalScatter = false;
    options.glv = true;
    options.batchAffine = true;
    options.precompute = true;
    return options;
}

/**
 * Warm cache: the proving-service steady state. The table is built
 * once (engine constructed outside the loop, after a throwaway
 * construction primes BaseTableCache), so iterations measure the
 * combined single-pass MSM only.
 */
void
BM_EngineMsmPrecomputeWarm(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto &in = inputs(n);
    const gpusim::Cluster cluster(gpusim::DeviceSpec::a100(), 8);
    const MsmEngine<Bn254> engine(in.points, cluster,
                                  precomputeOptions());
    for (auto _ : state) {
        auto r = engine.compute(in.scalars);
        benchmark::DoNotOptimize(r.value);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EngineMsmPrecomputeWarm)
    ->Arg(1 << 14)
    ->Arg(1 << 18)
    ->Unit(benchmark::kMillisecond);

/**
 * Cold cache: every iteration clears BaseTableCache and rebuilds the
 * engine, so the table construction (the amortized one-time cost) is
 * inside the measurement. Warm vs cold is the ablation row the CI
 * release-bench gate checks.
 */
void
BM_EngineMsmPrecomputeCold(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto &in = inputs(n);
    const gpusim::Cluster cluster(gpusim::DeviceSpec::a100(), 8);
    const auto options = precomputeOptions();
    for (auto _ : state) {
        BaseTableCache<Bn254>::global().clear();
        const MsmEngine<Bn254> engine(in.points, cluster, options);
        auto r = engine.compute(in.scalars);
        benchmark::DoNotOptimize(r.value);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EngineMsmPrecomputeCold)
    ->Arg(1 << 14)
    ->Unit(benchmark::kMillisecond);

void
BM_NaiveMsm(benchmark::State &state)
{
    const auto &in = inputs(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        auto r = msmNaive<Bn254>(in.points, in.scalars);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_NaiveMsm)->Arg(1 << 8)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace distmsm::msm

BENCHMARK_MAIN();
