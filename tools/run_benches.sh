#!/usr/bin/env bash
# Run the MSM micro + ablation benches and write BENCH_msm.json at
# the repo root.
#
# The acceptance rows are the BM_EngineMsm* configurations of
# bench/bench_micro_msm.cc (host wall-clock, BN254, 8 simulated
# GPUs): legacy, +GLV, +batched-affine, both flags (s = 13, signed
# digits), plus the fixed-base precompute rows (s = 16, combined
# bucket pass) measured warm (BaseTableCache hit) and cold (table
# rebuilt every iteration). The JSON reports each row, the
# both-flags-vs-legacy speedup, the precompute-vs-both-flags speedup,
# and the cold-vs-warm ablation; the script FAILS if the warm
# precompute row is not faster than the cold one, or if enabling the
# fault layer's transfer checksums moves the simulated end-to-end
# total at the trace geometry by 3% or more (the verify work must
# stay hidden under the GPU stage), or if attaching the straggler
# watchdog + health tracker moves a fault-free run by 1% or more. The simulated one-knob ablation
# table (bench/bench_ablation_msm.cc) rides along verbatim for
# context, and a planner_ablation table (heuristic vs cost-model
# search vs persisted plan cache, gated: search never loses, a warm
# cache hit is free) is appended from msm_cli --planner runs.
#
# Timing rows are only meaningful from an optimized build: the script
# refuses to write BENCH_msm.json when the build tree or the bench
# binary's reported library_build_type is not Release, unless --smoke
# or DISTMSM_ALLOW_DEBUG_BENCH=1 downgrades the refusal — in which
# case it warns loudly, forces the JSON to mode "smoke" and tags it
# ("non_release_build" / "benchmark_library_build_type") so tainted
# rows are never mistaken for full-mode numbers.
#
# Usage: tools/run_benches.sh [--smoke] [build-dir]
#   --smoke    CI mode: only the 2^14 rows, shorter min_time, and no
#              speedup-threshold expectations (the warm-vs-cold gate
#              still applies).
#   build-dir  Release build tree (default: build-rel; configured and
#              built on demand).

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
smoke=0
build_dir=""
for arg in "$@"; do
    case "$arg" in
    --smoke) smoke=1 ;;
    *) build_dir="$arg" ;;
    esac
done
build_dir="${build_dir:-${repo_root}/build-rel}"

if [ ! -f "${build_dir}/CMakeCache.txt" ]; then
    # Build google-benchmark from source (forced Release, see the
    # root CMakeLists) whenever a checkout is available: distro
    # packages are routinely debug builds, which taints the timing
    # rows (benchmark_library_mismatch below). Point
    # DISTMSM_BENCHMARK_SRC at a checkout, or drop one at
    # third_party/benchmark.
    bench_src="${DISTMSM_BENCHMARK_SRC:-${repo_root}/third_party/benchmark}"
    bench_src_flag=()
    if [ -f "${bench_src}/CMakeLists.txt" ]; then
        bench_src_flag=("-DDISTMSM_BENCHMARK_SOURCE_DIR=${bench_src}")
    fi
    cmake -B "${build_dir}" -S "${repo_root}" \
        -DCMAKE_BUILD_TYPE=Release "${bench_src_flag[@]}"
fi
# Refuse non-Release trees early (before the long build): timing
# rows from an unoptimized library are meaningless. The python
# stage below re-checks and also inspects the binary's own
# context.library_build_type.
build_type="$(grep -E '^CMAKE_BUILD_TYPE:' \
    "${build_dir}/CMakeCache.txt" | cut -d= -f2 || true)"
if [ "${build_type}" != "Release" ] &&
    [ "${DISTMSM_ALLOW_DEBUG_BENCH:-0}" != "1" ]; then
    echo "error: ${build_dir} is configured as" \
        "'${build_type:-<unset>}', not Release." >&2
    echo "Benchmark numbers from unoptimized builds are" \
        "meaningless. Use a Release tree, or set" \
        "DISTMSM_ALLOW_DEBUG_BENCH=1 to tag and proceed." >&2
    exit 1
fi
cmake --build "${build_dir}" -j "$(nproc)" \
    --target bench_micro_msm bench_ablation_msm

micro_json="${build_dir}/bench_micro_msm.json"
ablation_txt="${build_dir}/bench_ablation_msm.txt"

if [ "${smoke}" -eq 1 ]; then
    filter='BM_EngineMsm[A-Za-z]*/16384$'
    min_time=0.05
    repetitions=2
else
    filter='BM_EngineMsm'
    min_time=0.2
    repetitions=3
fi

# Multi-iteration timing: every row runs ${repetitions} full
# repetitions and the JSON keeps only the aggregates; the reported
# primary metric is the *median cpu time* (wall-clock real_time rides
# along for context but is load-sensitive on shared runners).
"${build_dir}/bench/bench_micro_msm" \
    --benchmark_filter="${filter}" \
    --benchmark_min_time="${min_time}" \
    --benchmark_repetitions="${repetitions}" \
    --benchmark_report_aggregates_only=true \
    --benchmark_format=json \
    --benchmark_out="${micro_json}" \
    --benchmark_out_format=json \
    --benchmark_counters_tabular=true

"${build_dir}/bench/bench_ablation_msm" | tee "${ablation_txt}"

# Per-phase breakdown: trace one simulated MSM at the acceptance
# geometry (BN254, signed, s = 13, 8 GPUs) at the largest bench size,
# plus one precompute-path MSM (s = 16, combined pass) so the
# table-build lane shows up; validate the export contract and attach
# the phase tables to the BENCH JSON.  See tools/trace_summary.py.
if [ "${smoke}" -eq 1 ]; then log_n=14; else log_n=18; fi
cmake --build "${build_dir}" -j "$(nproc)" --target msm_cli
trace_json="${build_dir}/trace_msm.json"
DISTMSM_TRACE="${trace_json}" "${build_dir}/examples/msm_cli" \
    bn254 "${log_n}" 8 --signed --window=13 > /dev/null
"${repo_root}/tools/trace_summary.py" "${trace_json}" --check --json \
    > "${build_dir}/trace_summary.json"
trace_pre_json="${build_dir}/trace_msm_precompute.json"
DISTMSM_TRACE="${trace_pre_json}" "${build_dir}/examples/msm_cli" \
    bn254 "${log_n}" 8 --glv --batch-affine --precompute \
    --naive-scatter --window=16 > /dev/null
"${repo_root}/tools/trace_summary.py" "${trace_pre_json}" --check \
    --json > "${build_dir}/trace_summary_precompute.json"
# Checksum-overhead gate: the same geometry with transfer checksums
# disabled. The default trace above has them on; enabling them must
# move the simulated end-to-end total by < 3% (the verify work
# overlaps the GPU stage — see MsmTimeline::verifyNs).
trace_nock_json="${build_dir}/trace_msm_nochecksum.json"
DISTMSM_TRACE="${trace_nock_json}" "${build_dir}/examples/msm_cli" \
    bn254 "${log_n}" 8 --signed --window=13 --no-checksums \
    > /dev/null
"${repo_root}/tools/trace_summary.py" "${trace_nock_json}" --check \
    --json > "${build_dir}/trace_summary_nochecksum.json"
# Watchdog + health overhead gate: the same fault-free geometry with
# the straggler watchdog and the health tracker attached vs both
# off. A fault-free run detects no stragglers, so the layer's cost
# is pure bookkeeping (one cost-model estimate + clean-window
# accounting) — it must move the simulated total by < 1%.
trace_wd_on_json="${build_dir}/trace_msm_watchdog_on.json"
DISTMSM_TRACE="${trace_wd_on_json}" "${build_dir}/examples/msm_cli" \
    bn254 "${log_n}" 8 --signed --window=13 --health > /dev/null
"${repo_root}/tools/trace_summary.py" "${trace_wd_on_json}" --check \
    --json > "${build_dir}/trace_summary_watchdog_on.json"
trace_wd_off_json="${build_dir}/trace_msm_watchdog_off.json"
DISTMSM_TRACE="${trace_wd_off_json}" "${build_dir}/examples/msm_cli" \
    bn254 "${log_n}" 8 --signed --window=13 --no-watchdog \
    > /dev/null
"${repo_root}/tools/trace_summary.py" "${trace_wd_off_json}" --check \
    --json > "${build_dir}/trace_summary_watchdog_off.json"

# Multi-GPU scaling rows (analytic, instant): the bucket/window merge
# on hierarchical 8-GPU-per-node topologies from 8 to 256 simulated
# devices, priced with the all-to-host gather baseline, the forced
# tree and reduce-scatter schedules, and the tuner-picked collective.
# The python stage gates tuned < gather AND reduce-scatter <= tree at
# 256 devices (the congestion-priced hierarchical RS+AG merge must
# beat the serialized tree at scale).
scale_devices="8 32 64 128 256"
for d in ${scale_devices}; do
    for c in gather tree reduce-scatter auto; do
        DISTMSM_TRACE="${build_dir}/scale_${d}_${c}.json" \
            "${build_dir}/examples/msm_cli" bn254 24 \
            --topology="nodes=$((d / 8)),gpus=8" \
            --collective="${c}" > /dev/null
    done
done

# Tensor-core vs CUDA-core field-backend ablation (analytic,
# instant): the same BN254 geometry at 2^14..2^22 priced with each
# forced backend plus the planner's Auto pick, and one MNT4753 point
# where the cost model says the tensor path loses (the 12-limb digit
# matrices drown in compaction zero-lanes). The python stage gates
# modeled TC < CUDA-core on BN254 at every size, Auto agreeing with
# the winner on both curves.
tc_sizes="14 16 18 20 22"
for ln in ${tc_sizes}; do
    for fb in cuda-core tensor-core auto; do
        DISTMSM_TRACE="${build_dir}/tc_${ln}_${fb}.json" \
            "${build_dir}/examples/msm_cli" bn254 "${ln}" 8 \
            --field-backend="${fb}" > /dev/null
    done
done
for fb in cuda-core tensor-core auto; do
    DISTMSM_TRACE="${build_dir}/tc_mnt_20_${fb}.json" \
        "${build_dir}/examples/msm_cli" mnt4753 20 8 \
        --field-backend="${fb}" > /dev/null
done

# Autoscheduler ablation (analytic, instant): the acceptance
# geometry planned three ways — the hand-tuned heuristics, the
# cost-model search, and the persisted plan cache. The cached rows
# run in two separate processes against a fresh cache file (cold
# miss, then a warm hit that must re-load the plan from disk),
# proving the on-disk round trip. The python stage gates: search
# never loses to the heuristic, both cached rows price identically
# to the searched plan, and the warm process performs ZERO
# cost-model evaluations (metrics-verified).
plan_cache="${build_dir}/plan_cache.tsv"
rm -f "${plan_cache}"
for p in heuristic search; do
    DISTMSM_TRACE="${build_dir}/planner_${p}.json" \
        "${build_dir}/examples/msm_cli" bn254 20 8 \
        --planner="${p}" > /dev/null
done
DISTMSM_PLAN_CACHE="${plan_cache}" \
    DISTMSM_TRACE="${build_dir}/planner_cached_cold.json" \
    "${build_dir}/examples/msm_cli" bn254 20 8 --planner=cached \
    > /dev/null
DISTMSM_PLAN_CACHE="${plan_cache}" \
    DISTMSM_TRACE="${build_dir}/planner_cached_warm.json" \
    "${build_dir}/examples/msm_cli" bn254 20 8 --planner=cached \
    > /dev/null

SMOKE="${smoke}" MICRO_JSON="${micro_json}" \
    ABLATION_TXT="${ablation_txt}" OUT="${repo_root}/BENCH_msm.json" \
    TRACE_SUMMARY="${build_dir}/trace_summary.json" \
    TRACE_SUMMARY_PRE="${build_dir}/trace_summary_precompute.json" \
    TRACE_SUMMARY_NOCK="${build_dir}/trace_summary_nochecksum.json" \
    TRACE_SUMMARY_WD_ON="${build_dir}/trace_summary_watchdog_on.json" \
    TRACE_SUMMARY_WD_OFF="${build_dir}/trace_summary_watchdog_off.json" \
    TRACE_LOG_N="${log_n}" \
    BUILD_TYPE="${build_type}" \
    BUILD_DIR="${build_dir}" \
    SCALE_DEVICES="${scale_devices}" \
    TC_SIZES="${tc_sizes}" \
    REPETITIONS="${repetitions}" \
    ALLOW_DEBUG="${DISTMSM_ALLOW_DEBUG_BENCH:-0}" \
    python3 - <<'PY'
import json
import os
import sys

with open(os.environ["MICRO_JSON"]) as f:
    micro = json.load(f)
with open(os.environ["ABLATION_TXT"]) as f:
    ablation = [line.rstrip("\n") for line in f]
with open(os.environ["TRACE_SUMMARY"]) as f:
    trace_summary = json.load(f)
with open(os.environ["TRACE_SUMMARY_PRE"]) as f:
    trace_summary_pre = json.load(f)
with open(os.environ["TRACE_SUMMARY_NOCK"]) as f:
    trace_summary_nock = json.load(f)
with open(os.environ["TRACE_SUMMARY_WD_ON"]) as f:
    trace_summary_wd_on = json.load(f)
with open(os.environ["TRACE_SUMMARY_WD_OFF"]) as f:
    trace_summary_wd_off = json.load(f)

# Release guard. The build tree's CMAKE_BUILD_TYPE governs how the
# distmsm library under test was compiled — refuse anything but
# Release (DISTMSM_ALLOW_DEBUG_BENCH=1 downgrades the refusal to a
# loud warning plus a "non_release_build": true tag on the JSON).
# context.library_build_type reports the *google-benchmark library*
# build; a debug harness only adds per-iteration bookkeeping to
# millisecond-scale rows, so it warns and tags without failing.
build_type = os.environ.get("BUILD_TYPE", "")
non_release = build_type != "Release"
if non_release:
    msg = (f"benchmark tree configured '{build_type or 'unknown'}', "
           "not Release")
    if os.environ["ALLOW_DEBUG"] == "1":
        print(f"WARNING: {msg}; rows tagged non_release_build "
              "(DISTMSM_ALLOW_DEBUG_BENCH=1)", file=sys.stderr)
    else:
        print(f"error: {msg}. Rebuild with -DCMAKE_BUILD_TYPE="
              "Release, or set DISTMSM_ALLOW_DEBUG_BENCH=1 to tag "
              "and proceed.", file=sys.stderr)
        sys.exit(1)
# The benchmark binary reports the *google-benchmark library* build
# in context.library_build_type. A debug harness inflates every
# per-iteration bookkeeping cost, so a mismatch with the Release tree
# taints the timing rows: a HARD failure in full mode, no escape
# hatch — full-mode numbers from a debug harness must never be
# committed. Only --smoke (CI functional runs) downgrades it, and
# then the JSON is forced to mode "smoke" and tagged so no reader
# mistakes the rows for trustworthy full-mode numbers. Fix it for
# real by building the library from source in Release:
# DISTMSM_BENCHMARK_SRC=/path/to/benchmark tools/run_benches.sh.
lib_type = micro.get("context", {}).get("library_build_type", "")
lib_mismatch = (not non_release) and lib_type.lower() != "release"
if lib_mismatch:
    msg = (f"google-benchmark library was built "
           f"'{lib_type or 'unknown'}' against a "
           f"'{build_type}' tree — harness overhead taints the "
           "timing rows")
    if os.environ["SMOKE"] == "1":
        print(f"WARNING: {msg}; JSON forced to mode 'smoke' and "
              "tagged benchmark_library_build_type.", file=sys.stderr)
    else:
        print(f"error: {msg}. Build the library in Release (set "
              "DISTMSM_BENCHMARK_SRC to a google-benchmark checkout "
              "and reconfigure) or run with --smoke.",
              file=sys.stderr)
        sys.exit(1)

CONFIGS = {
    "BM_EngineMsmLegacy": ("legacy", {"glv": False, "batchAffine": False}),
    "BM_EngineMsmGlv": ("glv", {"glv": True, "batchAffine": False}),
    "BM_EngineMsmBatchAffine": (
        "batch_affine", {"glv": False, "batchAffine": True}),
    "BM_EngineMsmGlvBatchAffine": (
        "glv_batch_affine", {"glv": True, "batchAffine": True}),
    "BM_EngineMsmPrecomputeWarm": (
        "precompute_warm",
        {"glv": True, "batchAffine": True, "precompute": True,
         "cache": "warm"}),
    "BM_EngineMsmPrecomputeCold": (
        "precompute_cold",
        {"glv": True, "batchAffine": True, "precompute": True,
         "cache": "cold"}),
}

# Rows come from repetition aggregates
# (--benchmark_report_aggregates_only): the primary metric is the
# median *cpu* time across repetitions — robust to a co-tenant
# stealing the core mid-run — with the median wall-clock and the cpu
# stddev attached so outliers are visible in the JSON.
agg = {}
for b in micro.get("benchmarks", []):
    if b.get("run_type") != "aggregate":
        continue
    name, _, stat = b["name"].rpartition("_")
    base, _, n = name.partition("/")
    if base not in CONFIGS:
        continue
    agg.setdefault((base, int(n)), {})[stat] = b

rows = []
for (base, n), stats in sorted(agg.items()):
    median = stats.get("median")
    if median is None:
        print(f"error: no median aggregate for {base}/{n}; was the "
              "bench run without --benchmark_repetitions?",
              file=sys.stderr)
        sys.exit(1)
    label, flags = CONFIGS[base]
    rows.append({
        "config": label,
        "options": flags,
        "n": n,
        "cpu_ms": median["cpu_time"],
        "real_ms": median["real_time"],
        "cpu_stddev_ms": stats.get("stddev", {}).get("cpu_time"),
        "repetitions": int(os.environ["REPETITIONS"]),
    })

def ms_at(label, n):
    for r in rows:
        if r["config"] == label and r["n"] == n:
            return r["cpu_ms"]
    return None

sizes = sorted({r["n"] for r in rows})
speedups = {}
speedups_pre = {}
for n in sizes:
    legacy, both = ms_at("legacy", n), ms_at("glv_batch_affine", n)
    if legacy and both:
        speedups[str(n)] = round(legacy / both, 3)
    warm = ms_at("precompute_warm", n)
    if both and warm:
        speedups_pre[str(n)] = round(both / warm, 3)

# Cold/warm ablation at 2^14: the table-build cost the cache
# amortizes away. The warm row must beat the cold row, always.
ablation_cache = {}
cold, warm = ms_at("precompute_cold", 16384), \
    ms_at("precompute_warm", 16384)
if cold is not None and warm is not None:
    ablation_cache = {
        "n": 16384,
        "cold_ms": cold,
        "warm_ms": warm,
        "speedup_warm_vs_cold": round(cold / warm, 3),
    }
    if warm >= cold:
        print(f"error: warm precompute row ({warm:.3f} ms) is not "
              f"faster than cold ({cold:.3f} ms) at n=16384 — the "
              "base-table cache is not paying off.", file=sys.stderr)
        sys.exit(1)
else:
    print("error: precompute cold/warm rows missing at n=16384.",
          file=sys.stderr)
    sys.exit(1)

# Checksum-overhead gate: transfer-checksum verification (on by
# default) must cost < 3% of the simulated end-to-end total at the
# acceptance geometry. The verify work overlaps the GPU stage, so
# the exposed overhead is the delta of the two totals, not the raw
# verify_ns.
def timeline_total_ms(summary):
    tls = summary.get("timelines", [])
    if not tls:
        print("error: trace summary has no timelines", file=sys.stderr)
        sys.exit(1)
    return tls[0]["total_ms"]

def timeline_phase_ms(summary, phase):
    for row in summary.get("timelines", [{}])[0].get("phases", []):
        if row["phase"] == phase:
            return row["ms"]
    return 0.0

total_on_ms = timeline_total_ms(trace_summary)
total_off_ms = timeline_total_ms(trace_summary_nock)
verify_ms = timeline_phase_ms(trace_summary, "checksum verify")
overhead_ms = total_on_ms - total_off_ms
overhead_pct = 100.0 * overhead_ms / total_off_ms if total_off_ms else 0.0
if verify_ms <= 0.0:
    print("error: checksummed trace reports no verify phase — the "
          "fault layer did not run.", file=sys.stderr)
    sys.exit(1)
if overhead_pct >= 3.0:
    print(f"error: checksum overhead {overhead_ms:.3f} ms "
          f"({overhead_pct:.2f}%) of the {total_off_ms:.3f} ms "
          "baseline exceeds the 3% acceptance gate.", file=sys.stderr)
    sys.exit(1)

# Watchdog + health overhead gate: a fault-free run with the
# straggler watchdog and the health tracker attached must price
# within 1% of the same run with both off. No stragglers means no
# speculation, no backoff and no quarantine — the only cost is the
# deadline estimate and the clean-window bookkeeping, neither of
# which may leak into the simulated timeline.
wd_on_ms = timeline_total_ms(trace_summary_wd_on)
wd_off_ms = timeline_total_ms(trace_summary_wd_off)
wd_overhead_ms = wd_on_ms - wd_off_ms
wd_overhead_pct = 100.0 * wd_overhead_ms / wd_off_ms if wd_off_ms \
    else 0.0
if wd_overhead_pct >= 1.0:
    print(f"error: watchdog+health overhead {wd_overhead_ms:.3f} ms "
          f"({wd_overhead_pct:.2f}%) of the {wd_off_ms:.3f} ms "
          "baseline exceeds the 1% acceptance gate on a fault-free "
          "run.", file=sys.stderr)
    sys.exit(1)

# Multi-GPU collective scaling rows (analytic timelines from
# msm_cli --topology): merge traffic priced with the all-to-host
# gather, the forced tree, the forced reduce-scatter, and the
# tuner's pick. Acceptance gates at 256 devices: the tuned merge
# must be measurably below gather, and the congestion-priced
# reduce-scatter + allgather merge must not price above the tree.
ALGO_NAMES = {0: "gather", 1: "ring", 2: "tree", 3: "reduce-scatter"}
SCALE_PREFIX = {"gather": "gather", "tree": "tree",
                "reduce-scatter": "reduce_scatter", "auto": "tuned"}
scaling = []
for d in os.environ["SCALE_DEVICES"].split():
    row = {"devices": int(d), "nodes": int(d) // 8, "gpus_per_node": 8}
    for mode in ("gather", "tree", "reduce-scatter", "auto"):
        path = os.path.join(os.environ["BUILD_DIR"],
                            f"scale_{d}_{mode}.metrics.json")
        with open(path) as f:
            m = json.load(f)
        prefix = SCALE_PREFIX[mode]
        row[f"{prefix}_merge_ms"] = m["timeline/transfer_ns"] / 1e6
        row[f"{prefix}_total_ms"] = m["timeline/total_ns"] / 1e6
        if mode == "auto":
            row["tuned_collective"] = ALGO_NAMES.get(
                int(m["timeline/collective"]), "?")
            row["predicted_ms"] = {
                "gather": m["timeline/merge_gather_ns"] / 1e6,
                "ring": m["timeline/merge_ring_ns"] / 1e6,
                "tree": m["timeline/merge_tree_ns"] / 1e6,
                "reduce_scatter":
                    m["timeline/merge_reduce_scatter_ns"] / 1e6,
            }
    row["merge_speedup_tuned_vs_gather"] = round(
        row["gather_merge_ms"] / row["tuned_merge_ms"], 3) \
        if row["tuned_merge_ms"] else None
    row["merge_speedup_rs_vs_tree"] = round(
        row["tree_merge_ms"] / row["reduce_scatter_merge_ms"], 3) \
        if row["reduce_scatter_merge_ms"] else None
    scaling.append(row)
head = scaling[-1]
if head["devices"] == 256 and \
        head["tuned_merge_ms"] >= head["gather_merge_ms"]:
    print(f"error: at 256 devices the tuned merge "
          f"({head['tuned_merge_ms']:.3f} ms, "
          f"{head['tuned_collective']}) is not below the gather "
          f"baseline ({head['gather_merge_ms']:.3f} ms).",
          file=sys.stderr)
    sys.exit(1)
if head["devices"] == 256 and \
        head["reduce_scatter_merge_ms"] > head["tree_merge_ms"]:
    print(f"error: at 256 devices the reduce-scatter merge "
          f"({head['reduce_scatter_merge_ms']:.3f} ms) prices above "
          f"the tree ({head['tree_merge_ms']:.3f} ms) — the "
          "hierarchical RS+AG schedule lost its congestion win.",
          file=sys.stderr)
    sys.exit(1)

# Tensor-core field-backend ablation (analytic timelines from
# msm_cli --field-backend): forced CUDA-core vs forced tensor-core
# vs the planner's Auto pick. Gates: on BN254 the modeled TC backend
# must beat CUDA cores at every size and Auto must resolve to TC; on
# MNT4753 the inverse (TC loses to compaction zero-lanes, Auto keeps
# CUDA cores). Auto must also never be slower than both forced rows.
FIELD_BACKENDS = {1: "cuda-core", 2: "tensor-core"}

def tc_metrics(tag, fb):
    path = os.path.join(os.environ["BUILD_DIR"],
                        f"tc_{tag}_{fb}.metrics.json")
    with open(path) as f:
        return json.load(f)

def tc_row(curve, log_n, tag):
    row = {"curve": curve, "log2_n": log_n, "n": 1 << log_n}
    for fb in ("cuda-core", "tensor-core", "auto"):
        m = tc_metrics(tag, fb)
        key = fb.replace("-", "_")
        row[f"{key}_total_ms"] = m["timeline/total_ns"] / 1e6
        row[f"{key}_bucket_sum_ms"] = m["timeline/bucket_sum_ns"] / 1e6
        if fb == "auto":
            row["auto_resolved"] = FIELD_BACKENDS.get(
                int(m["timeline/field_backend"]), "?")
    row["bucket_sum_speedup_tc_vs_cuda"] = round(
        row["cuda_core_bucket_sum_ms"] / row["tensor_core_bucket_sum_ms"],
        3) if row["tensor_core_bucket_sum_ms"] else None
    row["total_speedup_tc_vs_cuda"] = round(
        row["cuda_core_total_ms"] / row["tensor_core_total_ms"], 3) \
        if row["tensor_core_total_ms"] else None
    return row

tc_rows = [tc_row("BN254", int(ln), ln)
           for ln in os.environ["TC_SIZES"].split()]
tc_rows.append(tc_row("MNT4753", 20, "mnt_20"))

for row in tc_rows:
    curve, n = row["curve"], row["n"]
    want = "tensor-core" if curve == "BN254" else "cuda-core"
    if row["auto_resolved"] != want:
        print(f"error: {curve} n={n}: auto resolved to "
              f"'{row['auto_resolved']}', cost model says '{want}'.",
              file=sys.stderr)
        sys.exit(1)
    tc, cc = row["tensor_core_total_ms"], row["cuda_core_total_ms"]
    if curve == "BN254" and tc >= cc:
        print(f"error: BN254 n={n}: modeled tensor-core total "
              f"({tc:.3f} ms) is not below CUDA-core ({cc:.3f} ms).",
              file=sys.stderr)
        sys.exit(1)
    if curve == "MNT4753" and cc >= tc:
        print(f"error: MNT4753 n={n}: CUDA-core total ({cc:.3f} ms) "
              f"should beat the tensor path ({tc:.3f} ms) — the "
              "cost model's compaction penalty vanished.",
              file=sys.stderr)
        sys.exit(1)
    auto_ms = row["auto_total_ms"]
    if auto_ms > min(tc, cc) * (1.0 + 1e-9):
        print(f"error: {curve} n={n}: auto ({auto_ms:.3f} ms) is "
              f"slower than the best forced backend "
              f"({min(tc, cc):.3f} ms).", file=sys.stderr)
        sys.exit(1)

# Autoscheduler ablation (analytic timelines from msm_cli
# --planner): the hand-tuned heuristics vs the cost-model search vs
# the persisted plan cache. Gates: the searched plan must never
# price worse than the heuristic one; both cached rows (cold miss,
# warm disk hit in a fresh process) must price identically to the
# searched plan; and the warm process must report zero cost-model
# evaluations — a cache hit that re-scores candidates is a cache in
# name only. msm_cli plans twice per process (the plan print and the
# timeline table), hence cold shows one miss and one hit.
def planner_metrics(tag):
    path = os.path.join(os.environ["BUILD_DIR"],
                        f"planner_{tag}.metrics.json")
    with open(path) as f:
        return json.load(f)

PLANNER_TAGS = ("heuristic", "search", "cached_cold", "cached_warm")
pm = {tag: planner_metrics(tag) for tag in PLANNER_TAGS}
planner_rows = []
for tag in PLANNER_TAGS:
    m = pm[tag]
    planner_rows.append({
        "planner": tag,
        "total_ms": m["timeline/total_ns"] / 1e6,
        "plans_evaluated": int(m.get("autoplan/evaluated", 0)),
        "plans_pruned": int(m.get("autoplan/pruned", 0)),
        "cost_model_evals": int(m.get("autoplan/cost_model_evals", 0)),
        "cache_hits": int(m.get("plan_cache/hits", 0)),
        "cache_misses": int(m.get("plan_cache/misses", 0)),
    })

heur_ns = pm["heuristic"]["timeline/total_ns"]
search_ns = pm["search"]["timeline/total_ns"]
if search_ns > heur_ns * (1.0 + 1e-9):
    print(f"error: searched plan ({search_ns / 1e6:.3f} ms) prices "
          f"worse than the heuristic one ({heur_ns / 1e6:.3f} ms) — "
          "the search lost to its own seed.", file=sys.stderr)
    sys.exit(1)
for tag in ("cached_cold", "cached_warm"):
    cached_ns = pm[tag]["timeline/total_ns"]
    if cached_ns != search_ns:
        print(f"error: {tag} plan prices {cached_ns / 1e6:.6f} ms "
              f"but the live search gives {search_ns / 1e6:.6f} ms — "
              "the plan cache is not returning the searched plan "
              "bit-identically.", file=sys.stderr)
        sys.exit(1)
cold = pm["cached_cold"]
if int(cold.get("plan_cache/misses", 0)) < 1:
    print("error: cold cached run reports no plan-cache miss — the "
          "cache file was not fresh.", file=sys.stderr)
    sys.exit(1)
warm = pm["cached_warm"]
if int(warm.get("plan_cache/misses", 0)) != 0 or \
        int(warm.get("plan_cache/hits", 0)) < 1:
    print("error: warm cached run did not hit the on-disk plan "
          f"cache (hits={warm.get('plan_cache/hits')}, "
          f"misses={warm.get('plan_cache/misses')}).", file=sys.stderr)
    sys.exit(1)
if int(warm.get("autoplan/cost_model_evals", -1)) != 0:
    print("error: warm plan-cache hit performed "
          f"{warm.get('autoplan/cost_model_evals')} cost-model "
          "evaluations; a hit must be free.", file=sys.stderr)
    sys.exit(1)

# Machine/load guard: the conditions the timing rows were taken
# under, embedded so a reader (or a CI diff) can spot untrustworthy
# numbers — a debug build, a loaded box — without re-running.
load1 = os.getloadavg()[0]
cpus = os.cpu_count() or 1
guard = {
    "build_type": build_type or "unknown",
    "benchmark_library_build_type": lib_type or "unknown",
    "primary_metric": "cpu_ms (median of repetitions)",
    "repetitions": int(os.environ["REPETITIONS"]),
    "cpu_count": cpus,
    "load_avg_1m": round(load1, 2),
    "high_load": load1 > cpus,
}
if guard["high_load"]:
    print(f"WARNING: 1-minute load {load1:.2f} exceeds the "
          f"{cpus} available CPU(s); wall-clock rows are suspect "
          "(cpu_ms stays the primary metric). Tagged high_load.",
          file=sys.stderr)

doc = {
    "bench": "msm_hot_path",
    "curve": "BN254",
    "geometry": {
        "gpus": 8, "window_bits": 13, "signed_digits": True,
        "precompute_window_bits": 16},
    "mode": "smoke" if (os.environ["SMOKE"] == "1" or lib_mismatch)
            else "full",
    "context": micro.get("context", {}),
    "guard": guard,
    "rows": rows,
    "collective_scaling": {
        "curve": "BN254", "log2_n": 24,
        "gate": "tuned merge < gather merge and reduce-scatter "
                "merge <= tree merge at 256 devices",
        "rows": scaling,
    },
    "tc_ablation": {
        "gate": "modeled tensor-core < cuda-core on BN254 at every "
                "size; auto resolves to the cost-model winner on "
                "both curves and never loses to a forced backend",
        "rows": tc_rows,
    },
    "planner_ablation": {
        "curve": "BN254", "log2_n": 20, "gpus": 8,
        "gate": "search <= heuristic; cached rows price identically "
                "to search; warm cache hit performs zero cost-model "
                "evaluations",
        "search_speedup_vs_heuristic": round(heur_ns / search_ns, 3)
            if search_ns else None,
        "rows": planner_rows,
    },
    "speedup_glv_batch_vs_legacy": speedups,
    "speedup_precompute_warm_vs_glv_batch": speedups_pre,
    "precompute_cache_ablation": ablation_cache,
    "ablation_simulated": ablation,
    "phase_breakdown_simulated": {
        "n": 1 << int(os.environ["TRACE_LOG_N"]),
        "timelines": trace_summary["timelines"],
        "timelines_precompute": trace_summary_pre["timelines"],
    },
    "checksum_overhead": {
        "n": 1 << int(os.environ["TRACE_LOG_N"]),
        "verify_ms": verify_ms,
        "total_with_checksums_ms": total_on_ms,
        "total_without_checksums_ms": total_off_ms,
        "overhead_ms": round(overhead_ms, 6),
        "overhead_pct": round(overhead_pct, 4),
        "gate_pct": 3.0,
    },
    "watchdog_overhead": {
        "n": 1 << int(os.environ["TRACE_LOG_N"]),
        "total_with_watchdog_health_ms": wd_on_ms,
        "total_without_ms": wd_off_ms,
        "overhead_ms": round(wd_overhead_ms, 6),
        "overhead_pct": round(wd_overhead_pct, 4),
        "gate_pct": 1.0,
    },
}
if non_release:
    doc["non_release_build"] = True
if lib_type.lower() != "release":
    doc["benchmark_library_build_type"] = lib_type or "unknown"
guard["benchmark_library_mismatch"] = lib_mismatch
with open(os.environ["OUT"], "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"wrote {os.environ['OUT']}")
for n, s in speedups.items():
    print(f"  n={n}: glv+batch vs legacy = {s}x")
for n, s in speedups_pre.items():
    print(f"  n={n}: precompute (warm) vs glv+batch = {s}x")
print(f"  n=16384: warm vs cold = "
      f"{ablation_cache['speedup_warm_vs_cold']}x")
print(f"  checksum overhead at n=2^{os.environ['TRACE_LOG_N']}: "
      f"{overhead_pct:.2f}% (gate 3%)")
print(f"  watchdog+health overhead at n=2^{os.environ['TRACE_LOG_N']}"
      f": {wd_overhead_pct:.2f}% (gate 1%)")
for row in scaling:
    print(f"  {row['devices']} devices: merge gather "
          f"{row['gather_merge_ms']:.3f} ms vs tuned "
          f"({row['tuned_collective']}) {row['tuned_merge_ms']:.3f} "
          f"ms = {row['merge_speedup_tuned_vs_gather']}x; "
          f"rs vs tree = {row['merge_speedup_rs_vs_tree']}x")
for row in tc_rows:
    print(f"  {row['curve']} n=2^{row['log2_n']}: bucket sum "
          f"tc vs cuda = {row['bucket_sum_speedup_tc_vs_cuda']}x, "
          f"total = {row['total_speedup_tc_vs_cuda']}x, auto -> "
          f"{row['auto_resolved']}")
print(f"  planner at n=2^20: heuristic {heur_ns / 1e6:.3f} ms vs "
      f"search {search_ns / 1e6:.3f} ms = "
      f"{round(heur_ns / search_ns, 3)}x; warm cache hit: "
      f"{int(warm.get('plan_cache/hits', 0))} hits, 0 cost-model "
      "evals")
PY
