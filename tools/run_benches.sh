#!/usr/bin/env bash
# Run the MSM micro + ablation benches and write BENCH_msm.json at
# the repo root.
#
# The acceptance rows are the four BM_EngineMsm* configurations of
# bench/bench_micro_msm.cc (host wall-clock, BN254, s = 13, signed
# digits, 8 simulated GPUs): legacy, +GLV, +batched-affine, and both
# flags; the JSON reports each row and the both-flags-vs-legacy
# speedup at the largest input size. The simulated one-knob ablation
# table (bench/bench_ablation_msm.cc) rides along verbatim for
# context.
#
# Usage: tools/run_benches.sh [--smoke] [build-dir]
#   --smoke    CI mode: only the 2^14 rows, shorter min_time, and no
#              speedup-threshold expectations.
#   build-dir  Release build tree (default: build-rel; configured and
#              built on demand).

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
smoke=0
build_dir=""
for arg in "$@"; do
    case "$arg" in
    --smoke) smoke=1 ;;
    *) build_dir="$arg" ;;
    esac
done
build_dir="${build_dir:-${repo_root}/build-rel}"

if [ ! -f "${build_dir}/CMakeCache.txt" ]; then
    cmake -B "${build_dir}" -S "${repo_root}" \
        -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "${build_dir}" -j "$(nproc)" \
    --target bench_micro_msm bench_ablation_msm

micro_json="${build_dir}/bench_micro_msm.json"
ablation_txt="${build_dir}/bench_ablation_msm.txt"

if [ "${smoke}" -eq 1 ]; then
    filter='BM_EngineMsm[A-Za-z]*/16384$'
    min_time=0.05
else
    filter='BM_EngineMsm'
    min_time=0.2
fi

"${build_dir}/bench/bench_micro_msm" \
    --benchmark_filter="${filter}" \
    --benchmark_min_time="${min_time}" \
    --benchmark_format=json \
    --benchmark_out="${micro_json}" \
    --benchmark_out_format=json \
    --benchmark_counters_tabular=true

"${build_dir}/bench/bench_ablation_msm" | tee "${ablation_txt}"

# Per-phase breakdown: trace one simulated MSM at the acceptance
# geometry (BN254, signed, s = 13, 8 GPUs) at the largest bench size,
# validate the export contract, and attach the phase table to the
# BENCH JSON.  See tools/trace_summary.py / DESIGN.md.
if [ "${smoke}" -eq 1 ]; then log_n=14; else log_n=18; fi
cmake --build "${build_dir}" -j "$(nproc)" --target msm_cli
trace_json="${build_dir}/trace_msm.json"
DISTMSM_TRACE="${trace_json}" "${build_dir}/examples/msm_cli" \
    bn254 "${log_n}" 8 --signed --window=13 > /dev/null
"${repo_root}/tools/trace_summary.py" "${trace_json}" --check --json \
    > "${build_dir}/trace_summary.json"

SMOKE="${smoke}" MICRO_JSON="${micro_json}" \
    ABLATION_TXT="${ablation_txt}" OUT="${repo_root}/BENCH_msm.json" \
    TRACE_SUMMARY="${build_dir}/trace_summary.json" \
    TRACE_LOG_N="${log_n}" \
    python3 - <<'PY'
import json
import os

with open(os.environ["MICRO_JSON"]) as f:
    micro = json.load(f)
with open(os.environ["ABLATION_TXT"]) as f:
    ablation = [line.rstrip("\n") for line in f]
with open(os.environ["TRACE_SUMMARY"]) as f:
    trace_summary = json.load(f)

CONFIGS = {
    "BM_EngineMsmLegacy": ("legacy", {"glv": False, "batchAffine": False}),
    "BM_EngineMsmGlv": ("glv", {"glv": True, "batchAffine": False}),
    "BM_EngineMsmBatchAffine": (
        "batch_affine", {"glv": False, "batchAffine": True}),
    "BM_EngineMsmGlvBatchAffine": (
        "glv_batch_affine", {"glv": True, "batchAffine": True}),
}

rows = []
for b in micro.get("benchmarks", []):
    base, _, n = b["name"].partition("/")
    if base not in CONFIGS:
        continue
    label, flags = CONFIGS[base]
    rows.append({
        "config": label,
        "options": flags,
        "n": int(n),
        "real_ms": b["real_time"],
        "cpu_ms": b["cpu_time"],
        "iterations": b["iterations"],
    })

def ms_at(label, n):
    for r in rows:
        if r["config"] == label and r["n"] == n:
            return r["real_ms"]
    return None

sizes = sorted({r["n"] for r in rows})
speedups = {}
for n in sizes:
    before, after = ms_at("legacy", n), ms_at("glv_batch_affine", n)
    if before and after:
        speedups[str(n)] = round(before / after, 3)

doc = {
    "bench": "msm_hot_path",
    "curve": "BN254",
    "geometry": {
        "gpus": 8, "window_bits": 13, "signed_digits": True},
    "mode": "smoke" if os.environ["SMOKE"] == "1" else "full",
    "context": micro.get("context", {}),
    "rows": rows,
    "speedup_glv_batch_vs_legacy": speedups,
    "ablation_simulated": ablation,
    "phase_breakdown_simulated": {
        "n": 1 << int(os.environ["TRACE_LOG_N"]),
        "timelines": trace_summary["timelines"],
    },
}
with open(os.environ["OUT"], "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"wrote {os.environ['OUT']}")
for n, s in speedups.items():
    print(f"  n={n}: glv+batch vs legacy = {s}x")
PY
