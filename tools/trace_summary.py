#!/usr/bin/env python3
"""Summarize / validate a DistMSM Chrome trace + metrics pair.

The simulator writes two files per run (see src/support/trace.h):

  <name>.json          Chrome trace-event JSON (load in Perfetto or
                       chrome://tracing)
  <name>.metrics.json  flat {"key": number} metrics registry

This tool renders a Figure-10-style per-phase latency breakdown of
every recorded MSM timeline from the metrics file, and optionally
validates the trace against the export contract.

Usage:
  tools/trace_summary.py TRACE.json            # breakdown table
  tools/trace_summary.py TRACE.json --check    # validate, exit != 0
                                               # on any violation
  tools/trace_summary.py TRACE.json --json     # machine-readable

The metrics file is located automatically next to the trace
(TRACE.metrics.json); pass --metrics to override.

--check enforces:
  * well-formed trace-event JSON: every event has name/ph/ts/pid/tid,
    'X' spans carry a non-negative dur, flow events carry ids and
    every flow 's' has a matching 'f';
  * at least one complete ('X') span;
  * the overlap contract: for each recorded timeline, the latest
    span end across its host + device lanes equals the recorded
    timeline/<label>/total_ns metric (transfers overlap compute;
    an overlapped CPU bucket-reduce or checksum-verify only
    contributes its exposed tail — the accounting model of
    MsmTimeline::totalNs());
  * the fault contract: fault/corrupt_injected must not exceed
    fault/corrupt_detected (an undetected injected corruption means
    the checksum layer silently passed a wrong payload);
  * the watchdog contract: fault/straggler_respawns equals
    fault/speculative_wins + fault/speculative_losses, and
    fault/straggler_wait_ns never exceeds fault/straggler_stall_ns
    (speculation must not lose to doing nothing);
  * the health contract: health/quarantined_devices +
    health/probation_devices never exceeds health/devices.
"""

import argparse
import json
import os
import sys

# Lane map, mirroring src/support/trace.h (tracelane constants).
HOST_PID = 0
DEVICE_PID_BASE = 1
ENGINE_HOST_PID = 99  # timeline lanes are every pid below this
VALID_PHASES = {"X", "i", "s", "f", "M"}

# Timeline phases in pipeline order, as recorded by traceMsmTimeline.
PHASES = [
    ("scatter_ns", "bucket scatter"),
    ("bucket_sum_ns", "bucket sum"),
    ("transfer_ns", "transfer"),
    ("bucket_reduce_ns", "bucket reduce"),
    ("verify_ns", "checksum verify"),
    ("window_reduce_ns", "window reduce"),
]


def load_json(path, what):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"error: cannot load {what} {path}: {exc}")


def metrics_path_for(trace_path):
    base = trace_path
    if base.endswith(".json"):
        base = base[: -len(".json")]
    return base + ".metrics.json"


def validate_trace(doc):
    """Return a list of violation strings (empty when valid)."""
    problems = []
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return ["top level is not an object with a traceEvents list"]
    events = doc["traceEvents"]
    if not isinstance(events, list):
        return ["traceEvents is not a list"]

    spans = 0
    flow_starts, flow_ends = set(), set()
    for i, e in enumerate(events):
        where = f"event[{i}]"
        if not isinstance(e, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = e.get("ph")
        if ph not in VALID_PHASES:
            problems.append(f"{where}: bad ph {ph!r}")
            continue
        for field, kinds in (("name", str), ("ph", str)):
            if not isinstance(e.get(field), kinds):
                problems.append(f"{where}: missing {field}")
        for field in ("pid", "tid"):
            if not isinstance(e.get(field), int):
                problems.append(f"{where}: missing integer {field}")
        if ph != "M" and not isinstance(e.get("ts"), (int, float)):
            problems.append(f"{where}: missing numeric ts")
        if ph == "X":
            spans += 1
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: span without dur >= 0")
        if ph in ("s", "f"):
            if "id" not in e:
                problems.append(f"{where}: flow without id")
            else:
                (flow_starts if ph == "s" else flow_ends).add(e["id"])

    if spans == 0:
        problems.append("no complete ('X') spans recorded")
    for fid in sorted(flow_starts - flow_ends):
        problems.append(f"flow id {fid}: 's' without matching 'f'")
    for fid in sorted(flow_ends - flow_starts):
        problems.append(f"flow id {fid}: 'f' without matching 's'")
    return problems


def timeline_labels(metrics):
    """Timeline label prefixes recorded in the metrics registry."""
    labels = set()
    for key in metrics:
        if key.startswith("timeline/") and key.endswith("/total_ns"):
            labels.add(key[len("timeline/"): -len("total_ns")])
        elif key == "timeline/total_ns":
            labels.add("")
    return sorted(labels)


def check_overlap_contract(doc, metrics):
    """The latest timeline-lane span end must equal total_ns."""
    problems = []
    for label in timeline_labels(metrics):
        total_us = metrics[f"timeline/{label}total_ns"] / 1000.0
        lane_end = None
        for e in doc.get("traceEvents", []):
            if e.get("ph") != "X" or e.get("pid", 999) >= ENGINE_HOST_PID:
                continue
            name = e.get("name", "")
            if label and not name.startswith(label):
                continue
            end = e["ts"] + e["dur"]
            lane_end = end if lane_end is None else max(lane_end, end)
        if lane_end is None:
            problems.append(
                f"timeline {label or '<default>'}: metrics recorded "
                "but no spans on host/device lanes")
            continue
        tolerance = max(1e-6, 1e-9 * abs(total_us))
        if abs(lane_end - total_us) > tolerance:
            problems.append(
                f"timeline {label or '<default>'}: spans end at "
                f"{lane_end:.3f} us but total_ns says "
                f"{total_us:.3f} us (overlap accounting broken)")
    return problems


def breakdown(metrics):
    """Per-timeline Figure-10-style phase rows."""
    out = []
    for label in timeline_labels(metrics):
        prefix = f"timeline/{label}"
        total = metrics.get(prefix + "total_ns", 0.0)
        cpu_reduce = metrics.get(prefix + "cpu_reduce", 0.0) != 0.0
        rows = []
        for key, name in PHASES:
            ns = metrics.get(prefix + key, 0.0)
            if key == "bucket_reduce_ns":
                name += " (CPU)" if cpu_reduce else " (GPU)"
            rows.append({
                "phase": name,
                "ms": ns / 1e6,
                "pct_of_total": 100.0 * ns / total if total else 0.0,
            })
        out.append({
            "timeline": label.rstrip("/") or "<default>",
            "num_gpus": int(metrics.get(prefix + "num_gpus", 0)),
            "total_ms": total / 1e6,
            "phases": rows,
        })
    return out


def other_sections(metrics):
    """Non-timeline metric groups worth echoing (prover, pipeline,
    fault-injection and device-health counters)."""
    groups = {}
    for key, value in metrics.items():
        top = key.split("/", 1)[0]
        if top in ("prover", "pipeline", "fault", "health"):
            groups.setdefault(top, {})[key] = value
    return groups


def check_fault_contract(metrics):
    """Every injected corruption must have been detected, and the
    watchdog / health books must balance.

    The engine only emits fault/* counters when the fault layer ran;
    an injected-but-undetected corruption means the checksum layer
    silently passed a wrong payload — exactly the failure --check
    exists to catch. The watchdog contract: every speculative
    respawn was either adopted (a win) or outrun by its original (a
    loss), and the priced watchdog wait never exceeds the stall a
    watchdog-less run would have suffered. The health contract:
    quarantined + probation devices never exceed the tracked fleet.
    """
    problems = []
    injected = metrics.get("fault/corrupt_injected", 0)
    detected = metrics.get("fault/corrupt_detected", 0)
    if injected > detected:
        problems.append(
            f"fault contract: {injected:g} corrupted transfer(s) "
            f"injected but only {detected:g} detected "
            "(checksum verification missed a byte flip)")
    respawns = metrics.get("fault/straggler_respawns", 0)
    wins = metrics.get("fault/speculative_wins", 0)
    losses = metrics.get("fault/speculative_losses", 0)
    if respawns != wins + losses:
        problems.append(
            f"fault contract: {respawns:g} straggler respawn(s) but "
            f"{wins:g} win(s) + {losses:g} loss(es) "
            "(a speculative copy was never accounted for)")
    wait = metrics.get("fault/straggler_wait_ns", 0)
    stall = metrics.get("fault/straggler_stall_ns", 0)
    if wait > stall:
        problems.append(
            f"fault contract: watchdog wait {wait:g} ns exceeds the "
            f"counterfactual stall {stall:g} ns "
            "(speculation made the run slower than doing nothing)")
    devices = metrics.get("health/devices", 0)
    unhealthy = (metrics.get("health/quarantined_devices", 0)
                 + metrics.get("health/probation_devices", 0))
    if devices and unhealthy > devices:
        problems.append(
            f"health contract: {unhealthy:g} quarantined+probation "
            f"device(s) out of {devices:g} tracked")
    return problems


def print_tables(summary):
    for t in summary["timelines"]:
        print(f"timeline {t['timeline']} "
              f"({t['num_gpus']} GPUs, total {t['total_ms']:.3f} ms)")
        width = max(len(r["phase"]) for r in t["phases"])
        for r in t["phases"]:
            print(f"  {r['phase']:<{width}}  {r['ms']:>12.3f} ms  "
                  f"{r['pct_of_total']:>6.1f}%")
        print("  note: phases overlap; %s do not sum to 100"
              % ("columns" if len(t["phases"]) else ""))
        print()
    for group, values in sorted(summary["sections"].items()):
        print(f"{group}:")
        for key in sorted(values):
            print(f"  {key}: {values[key]:g}")
        print()


def main():
    parser = argparse.ArgumentParser(
        description="Summarize / validate a DistMSM trace")
    parser.add_argument("trace", help="Chrome trace JSON path")
    parser.add_argument("--metrics", help="metrics JSON path "
                        "(default: <trace>.metrics.json)")
    parser.add_argument("--check", action="store_true",
                        help="validate the export contract; exit 1 "
                        "on any violation")
    parser.add_argument("--json", action="store_true",
                        help="emit the summary as JSON")
    args = parser.parse_args()

    doc = load_json(args.trace, "trace")
    metrics_path = args.metrics or metrics_path_for(args.trace)
    metrics = {}
    if os.path.exists(metrics_path):
        metrics = load_json(metrics_path, "metrics")
        if not isinstance(metrics, dict) or not all(
                isinstance(v, (int, float)) for v in metrics.values()):
            raise SystemExit(
                f"error: {metrics_path} is not a flat "
                "{{string: number}} object")

    problems = []
    if args.check:
        problems = validate_trace(doc)
        problems += check_overlap_contract(doc, metrics)
        problems += check_fault_contract(metrics)

    summary = {
        "trace": args.trace,
        "events": len(doc.get("traceEvents", []))
        if isinstance(doc, dict) else 0,
        "timelines": breakdown(metrics),
        "sections": other_sections(metrics),
        "problems": problems,
    }

    if args.json:
        json.dump(summary, sys.stdout, indent=2)
        sys.stdout.write("\n")
    else:
        print(f"{args.trace}: {summary['events']} events")
        print_tables(summary)
        for p in problems:
            print(f"CHECK FAILED: {p}", file=sys.stderr)
        if args.check and not problems:
            print("check: OK")

    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
