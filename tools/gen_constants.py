#!/usr/bin/env python3
"""Generate src/field/curve_constants.h.

Every numeric constant used by the field and curve layers is derived here
from the (primality-checked) moduli, so no constant is hand-transcribed.
Run from the repository root:

    python3 tools/gen_constants.py > src/field/curve_constants.h
"""

import random
import sys


def is_prime(n, k=48):
    if n < 2:
        return False
    for p in [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37]:
        if n % p == 0:
            return n == p
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    rng = random.Random(0xD15713)
    for _ in range(k):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def legendre(a, p):
    return pow(a, (p - 1) // 2, p)


def tonelli(n, p):
    """Square root of n mod p (p odd prime, n a QR)."""
    assert legendre(n, p) == 1
    q, s = p - 1, 0
    while q % 2 == 0:
        q //= 2
        s += 1
    if s == 1:
        return pow(n, (p + 1) // 4, p)
    z = 2
    while legendre(z, p) != p - 1:
        z += 1
    m, c, t, r = s, pow(z, q, p), pow(n, q, p), pow(n, (q + 1) // 2, p)
    while t != 1:
        t2i, i = t, 0
        for i in range(1, m):
            t2i = t2i * t2i % p
            if t2i == 1:
                break
        b = pow(c, 1 << (m - i - 1), p)
        m, c = i, b * b % p
        t, r = t * c % p, r * b % p
    return r


def smallest_qnr(p):
    """Smallest quadratic non-residue of GF(p).

    A QNR z suffices everywhere a full group generator would be used:
    Tonelli-Shanks needs a QNR, and w = z^((p-1)/2^s) has exact
    multiplicative order 2^s because z^((p-1)/2) = -1.
    """
    z = 2
    while legendre(z, p) != p - 1:
        z += 1
    return z


def limbs(x, n):
    out = []
    for _ in range(n):
        out.append(x & 0xFFFFFFFFFFFFFFFF)
        x >>= 64
    assert x == 0
    return out


def fmt_limbs(x, n):
    ls = limbs(x, n)
    return ", ".join("0x%016xull" % l for l in ls)


FIELDS = {
    # name: (modulus, limbs)
    "bn254_fq": (
        21888242871839275222246405745257275088696311157297823662689037894645226208583,
        4,
    ),
    "bn254_fr": (
        21888242871839275222246405745257275088548364400416034343698204186575808495617,
        4,
    ),
    "bls377_fq": (
        0x01AE3A4617C510EAC63B05C06CA1493B1A22D9F300F5138F1EF3622FBA094800170B5D44300000008508C00000000001,
        6,
    ),
    "bls377_fr": (
        0x12AB655E9A2CA55660B44D1E5C37B00159AA76FED00000010A11800000000001,
        4,
    ),
    "bls381_fq": (
        0x1A0111EA397FE69A4B1BA7B6434BACD764774B84F38512BF6730D2A0F6B0F6241EABFFFEB153FFFFB9FEFFFFFFFFAAAB,
        6,
    ),
    "bls381_fr": (
        0x73EDA753299D7D483339D80809A1D80553BDA402FFFE5BFEFFFFFFFF00000001,
        4,
    ),
    "mnt4753_fq": (
        41898490967918953402344214791240637128170709919953949071783502921025352812571106773058893763790338921418070971888253786114353726529584385201591605722013126468931404347949840543007986327743462853720628051692141265303114721689601,
        12,
    ),
    "mnt4753_fr": (
        41898490967918953402344214791240637128170709919953949071783502921025352812571106773058893763790338921418070971888458477323173057491593855069696241854796396165721416325350064441470418137846398469611935719059908164220784476160001,
        12,
    ),
}

# curve name: (fq field, fr field, a, b, scalar_bits)
CURVES = {
    "bn254": ("bn254_fq", "bn254_fr", 0, 3, 254),
    "bls377": ("bls377_fq", "bls377_fr", 0, 1, 253),
    "bls381": ("bls381_fq", "bls381_fr", 0, 4, 255),
    "mnt4753": ("mnt4753_fq", "mnt4753_fr", 2, 1, 753),
}


def emit_field(name, p, n, out):
    assert is_prime(p), name
    bits = p.bit_length()
    r = pow(2, 64 * n, p)
    r2 = r * r % p
    inv64 = (-pow(p, -1, 1 << 64)) % (1 << 64)
    t, s = p - 1, 0
    while t % 2 == 0:
        t //= 2
        s += 1
    z = smallest_qnr(p)
    w = pow(z, (p - 1) >> s, p)
    out.append("namespace %s {" % name)
    out.append("inline constexpr std::size_t kLimbs = %d;" % n)
    out.append("inline constexpr unsigned kBits = %d;" % bits)
    out.append("inline constexpr unsigned kTwoAdicity = %d;" % s)
    out.append("inline constexpr std::uint64_t kInv64 = 0x%016xull;" % inv64)
    out.append("inline constexpr std::uint64_t kQnrSmall = %d;" % z)
    for cname, val in [
        ("kModulus", p),
        ("kR", r),
        ("kR2", r2),
        ("kRootOfUnity", w),
    ]:
        out.append(
            "inline constexpr std::uint64_t %s[%d] = {%s};"
            % (cname, n, fmt_limbs(val, n))
        )
    out.append("} // namespace %s" % name)
    out.append("")


def emit_curve(name, fq, fr, a, b, sbits, out):
    p = FIELDS[fq][0]
    n = FIELDS[fq][1]
    # Derive a generator point: smallest x >= 1 with x^3 + ax + b a QR.
    x = 1
    while True:
        rhs = (x * x * x + a * x + b) % p
        if rhs != 0 and legendre(rhs, p) == 1:
            y = tonelli(rhs, p)
            y = min(y, p - y)
            break
        x += 1
    assert (y * y - (x * x * x + a * x + b)) % p == 0
    out.append("namespace %s {" % name)
    out.append("inline constexpr unsigned kScalarBits = %d;" % sbits)
    for cname, val in [("kA", a), ("kB", b), ("kGx", x), ("kGy", y)]:
        out.append(
            "inline constexpr std::uint64_t %s[%d] = {%s};"
            % (cname, n, fmt_limbs(val, n))
        )
    out.append("} // namespace %s" % name)
    out.append("")


def main():
    out = []
    out.append("// Generated by tools/gen_constants.py -- do not edit.")
    out.append("//")
    out.append("// Field and curve constants for BN254, BLS12-377,")
    out.append("// BLS12-381 and MNT4753 (stand-in curve coefficients for")
    out.append("// MNT4753; see DESIGN.md). All limbs little-endian base")
    out.append("// 2^64; values are raw (not Montgomery form).")
    out.append("#ifndef DISTMSM_FIELD_CURVE_CONSTANTS_H")
    out.append("#define DISTMSM_FIELD_CURVE_CONSTANTS_H")
    out.append("")
    out.append("#include <cstddef>")
    out.append("#include <cstdint>")
    out.append("")
    out.append("namespace distmsm::constants {")
    out.append("")
    for name, (p, n) in FIELDS.items():
        emit_field(name, p, n, out)
    for name, (fq, fr, a, b, sbits) in CURVES.items():
        emit_curve(name, fq, fr, a, b, sbits, out)
    out.append("} // namespace distmsm::constants")
    out.append("")
    out.append("#endif // DISTMSM_FIELD_CURVE_CONSTANTS_H")
    sys.stdout.write("\n".join(out) + "\n")


if __name__ == "__main__":
    main()
