#!/usr/bin/env python3
"""Generate src/field/curve_constants.h.

Every numeric constant used by the field and curve layers is derived here
from the (primality-checked) moduli, so no constant is hand-transcribed.
Run from the repository root:

    python3 tools/gen_constants.py > src/field/curve_constants.h
"""

import random
import sys


def is_prime(n, k=48):
    if n < 2:
        return False
    for p in [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37]:
        if n % p == 0:
            return n == p
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    rng = random.Random(0xD15713)
    for _ in range(k):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def legendre(a, p):
    return pow(a, (p - 1) // 2, p)


def tonelli(n, p):
    """Square root of n mod p (p odd prime, n a QR)."""
    assert legendre(n, p) == 1
    q, s = p - 1, 0
    while q % 2 == 0:
        q //= 2
        s += 1
    if s == 1:
        return pow(n, (p + 1) // 4, p)
    z = 2
    while legendre(z, p) != p - 1:
        z += 1
    m, c, t, r = s, pow(z, q, p), pow(n, q, p), pow(n, (q + 1) // 2, p)
    while t != 1:
        t2i, i = t, 0
        for i in range(1, m):
            t2i = t2i * t2i % p
            if t2i == 1:
                break
        b = pow(c, 1 << (m - i - 1), p)
        m, c = i, b * b % p
        t, r = t * c % p, r * b % p
    return r


def smallest_qnr(p):
    """Smallest quadratic non-residue of GF(p).

    A QNR z suffices everywhere a full group generator would be used:
    Tonelli-Shanks needs a QNR, and w = z^((p-1)/2^s) has exact
    multiplicative order 2^s because z^((p-1)/2) = -1.
    """
    z = 2
    while legendre(z, p) != p - 1:
        z += 1
    return z


def ec_add(P, Q, p, a):
    """Affine short-Weierstrass addition; None is the identity."""
    if P is None:
        return Q
    if Q is None:
        return P
    x1, y1 = P
    x2, y2 = Q
    if x1 == x2:
        if (y1 + y2) % p == 0:
            return None
        lam = (3 * x1 * x1 + a) * pow(2 * y1, -1, p) % p
    else:
        lam = (y2 - y1) * pow(x2 - x1, -1, p) % p
    x3 = (lam * lam - x1 - x2) % p
    y3 = (lam * (x1 - x3) - y1) % p
    return (x3, y3)


def ec_mul(k, P, p, a):
    acc = None
    while k:
        if k & 1:
            acc = ec_add(acc, P, p, a)
        P = ec_add(P, P, p, a)
        k >>= 1
    return acc


def limbs(x, n):
    out = []
    for _ in range(n):
        out.append(x & 0xFFFFFFFFFFFFFFFF)
        x >>= 64
    assert x == 0
    return out


def fmt_limbs(x, n):
    ls = limbs(x, n)
    return ", ".join("0x%016xull" % l for l in ls)


FIELDS = {
    # name: (modulus, limbs)
    "bn254_fq": (
        21888242871839275222246405745257275088696311157297823662689037894645226208583,
        4,
    ),
    "bn254_fr": (
        21888242871839275222246405745257275088548364400416034343698204186575808495617,
        4,
    ),
    "bls377_fq": (
        0x01AE3A4617C510EAC63B05C06CA1493B1A22D9F300F5138F1EF3622FBA094800170B5D44300000008508C00000000001,
        6,
    ),
    "bls377_fr": (
        0x12AB655E9A2CA55660B44D1E5C37B00159AA76FED00000010A11800000000001,
        4,
    ),
    "bls381_fq": (
        0x1A0111EA397FE69A4B1BA7B6434BACD764774B84F38512BF6730D2A0F6B0F6241EABFFFEB153FFFFB9FEFFFFFFFFAAAB,
        6,
    ),
    "bls381_fr": (
        0x73EDA753299D7D483339D80809A1D80553BDA402FFFE5BFEFFFFFFFF00000001,
        4,
    ),
    "mnt4753_fq": (
        41898490967918953402344214791240637128170709919953949071783502921025352812571106773058893763790338921418070971888253786114353726529584385201591605722013126468931404347949840543007986327743462853720628051692141265303114721689601,
        12,
    ),
    "mnt4753_fr": (
        41898490967918953402344214791240637128170709919953949071783502921025352812571106773058893763790338921418070971888458477323173057491593855069696241854796396165721416325350064441470418137846398469611935719059908164220784476160001,
        12,
    ),
}

# curve name: (fq field, fr field, a, b, scalar_bits)
CURVES = {
    "bn254": ("bn254_fq", "bn254_fr", 0, 3, 254),
    "bls377": ("bls377_fq", "bls377_fr", 0, 1, 253),
    "bls381": ("bls381_fq", "bls381_fr", 0, 4, 255),
    "mnt4753": ("mnt4753_fq", "mnt4753_fr", 2, 1, 753),
}

# Cofactor of the order-r subgroup (h = #E(Fq) / r) for the curves
# whose generated generator must be cofactor-cleared into the
# r-torsion: the GLV eigenvalue relation lambda*P == phi(P) only
# holds there. h is the one published parameter not derivable from
# the moduli alone; both values are asserted below (h*r*G == O and
# r*(h*G) == O).
COFACTORS = {
    "bn254": 1,
    "bls381": 0x396C8C005555E1568C00AAAB0000AAAB,
}

# Curves that get GLV endomorphism constants (j == 0, a == 0).
GLV_CURVES = ["bn254", "bls381"]

# |k1|, |k2| bound (bits) asserted for every GLV decomposition.
GLV_HALF_SCALAR_BITS = 128


def curve_generator(name):
    """Generator point of CURVES[name], cofactor-cleared when the
    smallest-x point is not already in the order-r subgroup."""
    fq, fr, a, b, _ = CURVES[name]
    p = FIELDS[fq][0]
    r = FIELDS[fr][0]
    x = 1
    while True:
        rhs = (x * x * x + a * x + b) % p
        if rhs != 0 and legendre(rhs, p) == 1:
            y = tonelli(rhs, p)
            y = min(y, p - y)
            break
        x += 1
    assert (y * y - (x * x * x + a * x + b)) % p == 0
    h = COFACTORS.get(name)
    if h is not None:
        assert ec_mul(h * r, (x, y), p, a) is None, name
        if h != 1:
            x, y = ec_mul(h, (x, y), p, a)
        assert ec_mul(r, (x, y), p, a) is None, name
    return x, y


def glv_lattice_basis(lam, r):
    """Short basis of {(c, d) : c + d*lam == 0 mod r}: collect the
    extended-Euclid remainder vectors (r_i, -t_i), keep the two
    shortest independent ones (max-norm), orient det = +r."""
    rows = [(1, 0, r), (0, 1, lam)]
    while rows[-1][2] != 0:
        q = rows[-2][2] // rows[-1][2]
        rows.append(
            tuple(rows[-2][i] - q * rows[-1][i] for i in range(3))
        )
    cands = []
    for s, t, rem in rows:
        if rem == 0:
            continue
        assert (rem + (-t) * lam) % r == 0
        cands.append((rem, -t))
    cands.sort(key=lambda v: max(abs(v[0]), abs(v[1])))
    v1 = cands[0]
    v2 = next(
        v for v in cands if v1[0] * v[1] - v1[1] * v[0] != 0
    )
    det = v1[0] * v2[1] - v1[1] * v2[0]
    if det < 0:
        v2 = (-v2[0], -v2[1])
        det = -det
    assert det == r, "basis determinant must be +-r"
    bound = 1 << GLV_HALF_SCALAR_BITS
    for v in (v1, v2):
        assert max(abs(v[0]), abs(v[1])) < bound
    return v1, v2


def rnd_div(num, den):
    """round(num / den) to nearest, den > 0, num may be negative."""
    q, rem = divmod(num, den)
    return q + (1 if 2 * rem >= den else 0)


def glv_constants(name):
    """Derive (beta, lambda, basis, g1, g2) and validate that the
    exact integer transcription of msm/glv.h's decomposition stays
    within GLV_HALF_SCALAR_BITS and round-trips mod r."""
    fq, fr, a, _, sbits = CURVES[name]
    p = FIELDS[fq][0]
    r = FIELDS[fr][0]
    assert a == 0, "GLV cube-root endomorphism needs a == 0"

    # Roots of x^2 + x + 1: lambda mod r, beta mod p.
    sq_r = tonelli(r - 3, r)
    sq_p = tonelli(p - 3, p)
    lams = [(-1 + s) * pow(2, -1, r) % r for s in (sq_r, r - sq_r)]
    betas = [(-1 + s) * pow(2, -1, p) % p for s in (sq_p, p - sq_p)]

    # Pick the consistent (beta, lambda) pair against the generator:
    # lambda * G == (beta * Gx, Gy).
    gx, gy = curve_generator(name)
    pair = None
    for lam in lams:
        qx, qy = ec_mul(lam, (gx, gy), p, a)
        assert qy in (gy, p - gy)
        if qy != gy:
            continue
        for beta in betas:
            if qx == beta * gx % p:
                pair = (beta, lam)
    assert pair is not None, "no consistent (beta, lambda) pair"
    beta, lam = pair
    assert pow(beta, 3, p) == 1 and beta != 1
    assert pow(lam, 3, r) == 1 and lam != 1

    (a1, b1), (a2, b2) = glv_lattice_basis(lam, r)
    m = 384  # fixed-point shift of the rounding multipliers
    g1 = rnd_div(b2 << m, r)
    g2 = rnd_div(-b1 << m, r)

    def decompose(k):
        # Exact-integer model of glv.h: reduce, estimate the lattice
        # coordinates via the precomputed multipliers, subtract.
        k %= r
        c1 = (k * abs(g1) + (1 << (m - 1))) >> m
        c2 = (k * abs(g2) + (1 << (m - 1))) >> m
        if g1 < 0:
            c1 = -c1
        if g2 < 0:
            c2 = -c2
        k1 = k - c1 * a1 - c2 * a2
        k2 = -c1 * b1 - c2 * b2
        return k1, k2

    rng = random.Random(0x61B5)
    samples = [0, 1, 2, r - 1, r - lam, lam, r >> 1]
    samples += [(1 << sbits) - 1, 1 << (sbits - 1)]
    samples += [rng.randrange(0, 1 << sbits) for _ in range(4000)]
    bound = 1 << GLV_HALF_SCALAR_BITS
    for k in samples:
        k1, k2 = decompose(k)
        assert (k1 + k2 * lam - k) % r == 0, hex(k)
        assert abs(k1) < bound and abs(k2) < bound, hex(k)
    return beta, lam, (a1, b1), (a2, b2), g1, g2


def emit_field(name, p, n, out):
    assert is_prime(p), name
    bits = p.bit_length()
    r = pow(2, 64 * n, p)
    r2 = r * r % p
    inv64 = (-pow(p, -1, 1 << 64)) % (1 << 64)
    t, s = p - 1, 0
    while t % 2 == 0:
        t //= 2
        s += 1
    z = smallest_qnr(p)
    w = pow(z, (p - 1) >> s, p)
    out.append("namespace %s {" % name)
    out.append("inline constexpr std::size_t kLimbs = %d;" % n)
    out.append("inline constexpr unsigned kBits = %d;" % bits)
    out.append("inline constexpr unsigned kTwoAdicity = %d;" % s)
    out.append("inline constexpr std::uint64_t kInv64 = 0x%016xull;" % inv64)
    out.append("inline constexpr std::uint64_t kQnrSmall = %d;" % z)
    for cname, val in [
        ("kModulus", p),
        ("kR", r),
        ("kR2", r2),
        ("kRootOfUnity", w),
    ]:
        out.append(
            "inline constexpr std::uint64_t %s[%d] = {%s};"
            % (cname, n, fmt_limbs(val, n))
        )
    out.append("} // namespace %s" % name)
    out.append("")


def emit_curve(name, fq, fr, a, b, sbits, out):
    p = FIELDS[fq][0]
    n = FIELDS[fq][1]
    # Generator: smallest x >= 1 with x^3 + ax + b a QR, then
    # cofactor-cleared into the order-r subgroup where h is known.
    x, y = curve_generator(name)
    assert (y * y - (x * x * x + a * x + b)) % p == 0
    out.append("namespace %s {" % name)
    out.append("inline constexpr unsigned kScalarBits = %d;" % sbits)
    for cname, val in [("kA", a), ("kB", b), ("kGx", x), ("kGy", y)]:
        out.append(
            "inline constexpr std::uint64_t %s[%d] = {%s};"
            % (cname, n, fmt_limbs(val, n))
        )
    out.append("} // namespace %s" % name)
    out.append("")


def emit_glv(name, out):
    fq, fr, _, _, _ = CURVES[name]
    nq = FIELDS[fq][1]
    nr = FIELDS[fr][1]
    beta, lam, (a1, b1), (a2, b2), g1, g2 = glv_constants(name)
    out.append("namespace %s_glv {" % name)
    out.append(
        "inline constexpr unsigned kHalfScalarBits = %d;"
        % GLV_HALF_SCALAR_BITS
    )
    out.append(
        "inline constexpr std::uint64_t kBeta[%d] = {%s};"
        % (nq, fmt_limbs(beta, nq))
    )
    out.append(
        "inline constexpr std::uint64_t kLambda[%d] = {%s};"
        % (nr, fmt_limbs(lam, nr))
    )
    for cname, val in [
        ("kA1", a1),
        ("kB1", b1),
        ("kA2", a2),
        ("kB2", b2),
    ]:
        out.append(
            "inline constexpr std::uint64_t %s[%d] = {%s};"
            % (cname, nr, fmt_limbs(abs(val), nr))
        )
        out.append(
            "inline constexpr bool %sNeg = %s;"
            % (cname, "true" if val < 0 else "false")
        )
    for cname, val in [("kG1", g1), ("kG2", g2)]:
        out.append(
            "inline constexpr std::uint64_t %s[%d] = {%s};"
            % (cname, 2 * nr, fmt_limbs(abs(val), 2 * nr))
        )
        out.append(
            "inline constexpr bool %sNeg = %s;"
            % (cname, "true" if val < 0 else "false")
        )
    out.append("} // namespace %s_glv" % name)
    out.append("")


def main():
    out = []
    out.append("// Generated by tools/gen_constants.py -- do not edit.")
    out.append("//")
    out.append("// Field and curve constants for BN254, BLS12-377,")
    out.append("// BLS12-381 and MNT4753 (stand-in curve coefficients for")
    out.append("// MNT4753; see DESIGN.md). All limbs little-endian base")
    out.append("// 2^64; values are raw (not Montgomery form).")
    out.append("#ifndef DISTMSM_FIELD_CURVE_CONSTANTS_H")
    out.append("#define DISTMSM_FIELD_CURVE_CONSTANTS_H")
    out.append("")
    out.append("#include <cstddef>")
    out.append("#include <cstdint>")
    out.append("")
    out.append("namespace distmsm::constants {")
    out.append("")
    for name, (p, n) in FIELDS.items():
        emit_field(name, p, n, out)
    for name, (fq, fr, a, b, sbits) in CURVES.items():
        emit_curve(name, fq, fr, a, b, sbits, out)
    for name in GLV_CURVES:
        emit_glv(name, out)
    out.append("} // namespace distmsm::constants")
    out.append("")
    out.append("#endif // DISTMSM_FIELD_CURVE_CONSTANTS_H")
    sys.stdout.write("\n".join(out) + "\n")


if __name__ == "__main__":
    main()
